"""DET0xx — determinism taint: nondeterminism must not reach artifacts.

The whole reproduction rests on one invariant: every cached payload,
journal event, delay-sample table and cache-key digest is a pure
function of explicit inputs. PR 2's ``SEED001``/``TIME001`` banned the
*sources* outright in library code; these rules track the *flow* — a
wall-clock read is legal in a perf counter, but the moment the value
reaches a :meth:`JsonCache.put` payload or a ``hashlib`` digest, the
artifact is poisoned and the content-addressed cache serves stale or
irreproducible data forever.

Four sources, one rule each (so suppressions and baselines can target
the precise nondeterminism class):

* ``DET001`` — unseeded randomness (``default_rng()`` with no seed,
  legacy ``np.random.*``, stdlib ``random.*``, ``os.urandom``,
  ``uuid.uuid4``, ``secrets.*``);
* ``DET002`` — wall-clock reads (``time.time``, ``datetime.now``, …;
  ``perf_counter``/``monotonic`` are deliberately *not* sources — they
  feed perf reporting, and TIME001 already polices their siblings);
* ``DET003`` — environment reads (``os.environ``, ``os.getenv``):
  config is fine to *act* on, but an env value inside a cached payload
  means two machines disagree about the same key;
* ``DET004`` — unordered iteration (``set``/``frozenset`` iteration,
  ``set.pop``, ``os.listdir``/``scandir``, unsorted ``Path.glob``/
  ``rglob``/``iterdir``): hash/filesystem order leaking into an
  artifact makes byte-identical reruns impossible. ``sorted(...)``
  sanitizes.

Sinks: ``<cache>.put(...)`` payloads, ``content_key``/``design_cache_key``
arguments, ``hashlib`` digest inputs (every digest in this codebase is
either a cache key or a derived seed — both must be deterministic),
``DelaySamples(...)`` construction, and journal event emission.

The analysis is intraprocedural (taint does not cross function
boundaries) and tracks plain locals plus ``self.X`` pseudo-variables
assigned in the same function. See ``docs/static_analysis.md`` for the
precise lattice.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.core import Diagnostic, Rule, Severity, register_rule
from repro.lint.flowgraph.cfg import CFG, CFGNode, FunctionUnit
from repro.lint.flowgraph.dataflow import (
    ForwardAnalysis,
    assignments_of,
    call_name,
    ref_name,
)

register_rule(Rule(
    "DET001", "flow", Severity.ERROR,
    "unseeded-RNG-derived value flows into a cached payload, cache key, "
    "journal event or DelaySamples",
    "a random value inside a content-addressed artifact makes every rerun "
    "produce a different 'identical' artifact — the cache serves whichever "
    "landed first",
))
register_rule(Rule(
    "DET002", "flow", Severity.ERROR,
    "wall-clock-derived value flows into a cached payload, cache key, "
    "journal event or DelaySamples",
    "timestamps inside cached/hashed data make artifacts irreproducible; "
    "perf_counter offsets belong in perf counters, not payloads",
))
register_rule(Rule(
    "DET003", "flow", Severity.ERROR,
    "environment-variable value flows into a cached payload, cache key, "
    "journal event or DelaySamples",
    "an env-dependent payload means two machines disagree about the same "
    "cache key; resolve config into an explicit, salted identity instead",
))
register_rule(Rule(
    "DET004", "flow", Severity.WARNING,
    "set-iteration or filesystem-order value flows into a cached payload, "
    "cache key, journal event or DelaySamples",
    "hash and directory order are not stable across runs/machines; "
    "sorted(...) the collection before it reaches an artifact",
))

#: Taint kinds → emitting rule.
KIND_RULES = {
    "rng": "DET001",
    "wallclock": "DET002",
    "env": "DET003",
    "order": "DET004",
}

#: Marker label kind: "this value is a set" — not itself a violation,
#: but iterating it yields ``order`` taint.
SETVAL = "setval"

#: A taint label: (kind, description of the source).
Label = Tuple[str, str]
Taint = FrozenSet[Label]

_EMPTY: Taint = frozenset()

_LEGACY_NP_RANDOM = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "normal",
    "uniform", "choice", "shuffle", "permutation", "standard_normal",
    "exponential", "poisson", "binomial",
})
_STDLIB_RANDOM = frozenset({
    "random", "randint", "randrange", "uniform", "gauss", "choice",
    "choices", "shuffle", "sample", "betavariate", "normalvariate",
})
_WALLCLOCK = frozenset({
    "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "date.today", "datetime.date.today",
})
_FS_ORDER_METHODS = frozenset({"glob", "rglob", "iterdir", "scandir"})
#: Builtins through which every taint kind flows unchanged.
_PASSTHROUGH = frozenset({
    "float", "int", "str", "repr", "abs", "round", "list", "tuple",
    "dict", "bool", "format", "json.dumps", "json.loads", "copy.deepcopy",
})
#: Order-insensitive reductions: kill ``order``/``setval`` (the result
#: does not depend on iteration order) but keep value taints.
_ORDER_SANITIZERS = frozenset({"sorted", "len", "sum", "min", "max",
                               "any", "all", "set", "frozenset"})


def _is_unseeded_default_rng(call: ast.Call) -> bool:
    seed_args = list(call.args) + [
        kw.value for kw in call.keywords if kw.arg in (None, "seed")
    ]
    if not seed_args:
        return True
    first = seed_args[0]
    return isinstance(first, ast.Constant) and first.value is None


def _source_labels(call: ast.Call) -> Taint:
    """Taint introduced by a call expression itself (not its args)."""
    name = call_name(call)
    leaf = name.rsplit(".", 1)[-1]
    labels: Set[Label] = set()
    if leaf == "default_rng" and _is_unseeded_default_rng(call):
        labels.add(("rng", "unseeded default_rng()"))
    elif name.startswith(("np.random.", "numpy.random.")) and leaf in _LEGACY_NP_RANDOM:
        labels.add(("rng", f"legacy global-state RNG {name}()"))
    elif name.startswith("random.") and leaf in _STDLIB_RANDOM:
        labels.add(("rng", f"stdlib global-state RNG {name}()"))
    elif name in ("os.urandom", "uuid.uuid4", "uuid.uuid1"):
        labels.add(("rng", f"{name}()"))
    elif name.startswith("secrets."):
        labels.add(("rng", f"{name}()"))
    elif name in _WALLCLOCK:
        labels.add(("wallclock", f"wall-clock read {name}()"))
    elif name in ("os.getenv", "os.environ.get"):
        labels.add(("env", f"environment read {name}()"))
    elif leaf in ("backend_identity", "default_backend",
                  "version_salt") or (
            leaf == "select_backend"
            and not any(
                isinstance(a, ast.Constant) and a.value is not None
                for a in call.args)):
        # Interprocedural summary: repro.kernels backend resolution
        # (and the version salt built on it) is documented to consult
        # the REPRO_KERNEL env var whenever no explicit name is passed.
        labels.add(("env", f"REPRO_KERNEL-derived {leaf}()"))
    elif name in ("os.listdir", "os.scandir"):
        labels.add(("order", f"directory-order listing {name}()"))
    elif leaf in _FS_ORDER_METHODS and name not in ("", leaf):
        labels.add(("order", f"filesystem-order iteration .{leaf}()"))
    elif leaf in ("set", "frozenset") and name == leaf:
        labels.add((SETVAL, "set constructor"))
    return frozenset(labels)


def _is_environ(expr: ast.expr) -> bool:
    """``os.environ`` as a value (attribute chain, any alias of os)."""
    return (isinstance(expr, ast.Attribute) and expr.attr == "environ"
            and isinstance(expr.value, ast.Name) and expr.value.id == "os")


class _TaintEval:
    """Expression taint evaluation against a variable environment."""

    def __init__(self, env: Dict[str, Taint]):
        self.env = env

    def taint(self, expr: Optional[ast.expr]) -> Taint:
        if expr is None:
            return _EMPTY
        if isinstance(expr, ast.Constant):
            return _EMPTY
        if isinstance(expr, ast.Lambda):
            return _EMPTY
        name = ref_name(expr)
        if name is not None:
            return self.env.get(name, _EMPTY)
        if _is_environ(expr):
            return frozenset({("env", "os.environ")})
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Subscript):
            if _is_environ(expr.value):
                return frozenset({("env", "os.environ[...]")})
            return self.taint(expr.value) | self.taint(expr.slice)
        if isinstance(expr, ast.Attribute):
            return self.taint(expr.value)
        if isinstance(expr, (ast.Set,)):
            inner = _EMPTY
            for elt in expr.elts:
                inner |= self.taint(elt)
            return inner | frozenset({(SETVAL, "set literal")})
        if isinstance(expr, ast.SetComp):
            return self._comprehension(expr) | frozenset(
                {(SETVAL, "set comprehension")}
            )
        if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            return self._comprehension(expr)
        if isinstance(expr, ast.DictComp):
            return self._comprehension(expr)
        # Generic containers / operators: union over child expressions.
        out: Taint = _EMPTY
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                out |= self.taint(child)
        return out

    def _comprehension(self, expr: ast.expr) -> Taint:
        """Union taint of a comprehension, with set-iteration detection.

        The comprehension's own target variables are not tracked in the
        environment (they are scoped to the expression); iterating a
        set-valued source adds ``order`` taint to the whole result.
        """
        out: Taint = _EMPTY
        order = False
        for comp in getattr(expr, "generators", []):
            iter_taint = self.taint(comp.iter)
            if any(k == SETVAL for k, _ in iter_taint) or isinstance(
                    comp.iter, (ast.Set, ast.SetComp)):
                order = True
            out |= frozenset((k, d) for k, d in iter_taint if k != SETVAL)
            for cond in comp.ifs:
                out |= self.taint(cond)
        for attr in ("elt", "key", "value"):
            sub = getattr(expr, attr, None)
            if sub is not None:
                out |= self.taint(sub)
        if order:
            out |= frozenset({("order", "comprehension over a set")})
        return out

    # ------------------------------------------------------------------
    def _arg_taint(self, call: ast.Call) -> Taint:
        out: Taint = _EMPTY
        for arg in call.args:
            out |= self.taint(arg)
        for kw in call.keywords:
            out |= self.taint(kw.value)
        return out

    def _call(self, call: ast.Call) -> Taint:
        own = _source_labels(call)
        name = call_name(call)
        leaf = name.rsplit(".", 1)[-1]
        args = self._arg_taint(call)
        # set.pop() on a set-valued variable yields an order-dependent
        # element; any method call on a tainted receiver propagates.
        recv = _EMPTY
        if isinstance(call.func, ast.Attribute):
            recv = self.taint(call.func.value)
            if leaf == "pop" and any(k == SETVAL for k, _ in recv):
                own |= frozenset({("order", "set.pop()")})
        if leaf in _ORDER_SANITIZERS and name == leaf:
            kept = frozenset(
                (k, d) for k, d in (args | recv)
                if k not in ("order", SETVAL)
            )
            if leaf in ("set", "frozenset"):
                kept |= frozenset({(SETVAL, f"{leaf}()")})
            return own | kept
        if name in _PASSTHROUGH or leaf in ("join", "format", "encode",
                                            "decode", "items", "values",
                                            "keys", "get", "copy",
                                            "hexdigest", "digest", "update",
                                            "append", "extend", "strip",
                                            "split", "lower", "upper"):
            return own | args | recv
        # Unknown call: conservatively, tainted inputs taint the result.
        return own | args | recv


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
_HASHLIB_CTORS = frozenset({"md5", "sha1", "sha224", "sha256", "sha384",
                            "sha512", "blake2b", "blake2s"})
_JOURNAL_METHODS = frozenset({"event", "run_start", "run_finish",
                              "perf_snapshot", "task_start", "task_done",
                              "task_retry", "task_quarantine", "checkpoint"})


@dataclass(frozen=True)
class Sink:
    """One sink call site: which args to check, and how to name it."""

    description: str
    #: Expressions whose taint reaches the artifact.
    payload: Tuple[ast.expr, ...]


def _sink_of(call: ast.Call) -> Optional[Sink]:
    name = call_name(call)
    leaf = name.rsplit(".", 1)[-1]
    all_args: Tuple[ast.expr, ...] = tuple(call.args) + tuple(
        kw.value for kw in call.keywords
    )
    if leaf == "put" and isinstance(call.func, ast.Attribute):
        recv = name.rsplit(".", 2)[-2] if "." in name else ""
        if "cache" in recv.lower():
            return Sink(f"cache payload {name}(...)", all_args)
    if leaf in ("content_key", "design_cache_key", "_cache_key"):
        return Sink(f"cache key {leaf}(...)", all_args)
    if name.startswith("hashlib.") and leaf in _HASHLIB_CTORS:
        return Sink(f"hash digest {name}(...)", all_args)
    if leaf == "update" and isinstance(call.func, ast.Attribute):
        recv_name = ref_name(call.func.value) or ""
        if any(tok in recv_name.lower() for tok in ("hash", "digest", "hasher")):
            return Sink(f"hash digest {recv_name}.update(...)", all_args)
    if leaf == "DelaySamples":
        return Sink("DelaySamples(...)", all_args)
    if leaf in _JOURNAL_METHODS and isinstance(call.func, ast.Attribute):
        recv_name = ref_name(call.func.value) or ""
        if "journal" in recv_name.lower():
            return Sink(f"journal event {recv_name}.{leaf}(...)", all_args)
    return None


#: Method calls that fold their arguments into the receiver.
_MUTATORS = frozenset({"update", "append", "extend", "add", "insert",
                       "setdefault", "__setitem__"})


def _container_mutations(stmt: ast.stmt, ev: "_TaintEval"):
    """``(base_var, taint)`` pairs for container-mutating operations."""
    out: List[Tuple[str, Taint]] = []
    if isinstance(stmt, (ast.Assign, ast.AugAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                base = ref_name(target.value)
                # ``self.x`` stores are handled by assignments_of; here
                # we want ``doc["k"] = v`` and ``obj.field = v``.
                if base is not None and ev is not None:
                    out.append((base, ev.taint(stmt.value)))
    for call in ast.walk(stmt):
        if (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in _MUTATORS):
            base = ref_name(call.func.value)
            if base is not None:
                taint: Taint = _EMPTY
                for arg in list(call.args) + [kw.value for kw in call.keywords]:
                    taint |= ev.taint(arg)
                out.append((base, taint))
    return out


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------
TaintState = Tuple[Tuple[str, Taint], ...]


class _TaintAnalysis(ForwardAnalysis[TaintState]):
    """Var → taint-labels, forward over the CFG (union join)."""

    def initial(self) -> TaintState:
        return ()

    def join(self, a: TaintState, b: TaintState) -> TaintState:
        merged: Dict[str, Taint] = dict(a)
        for var, taint in b:
            merged[var] = merged.get(var, _EMPTY) | taint
        return tuple(sorted(merged.items()))

    def transfer(self, node: CFGNode, state: TaintState) -> TaintState:
        stmt = node.stmt
        if stmt is None:
            return state
        env = dict(state)
        ev = _TaintEval(env)
        changed = False
        # Weak updates through container mutation: a store into
        # ``doc["k"]`` / ``obj.attr`` taints the container variable, as
        # does a mutating method call (``doc.update(...)``,
        # ``rows.append(...)``); the container keeps its old taint too.
        for base, extra in _container_mutations(stmt, ev):
            merged = env.get(base, _EMPTY) | extra
            if env.get(base, _EMPTY) != merged:
                env[base] = merged
                changed = True
        for name, value in assignments_of(stmt):
            if value is not None:
                taint = ev.taint(value)
            elif isinstance(stmt, ast.AugAssign):
                taint = env.get(name, _EMPTY) | ev.taint(stmt.value)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                iter_taint = ev.taint(stmt.iter)
                taint = frozenset(
                    (k, d) for k, d in iter_taint if k != SETVAL
                )
                if any(k == SETVAL for k, _ in iter_taint) or isinstance(
                        stmt.iter, (ast.Set, ast.SetComp)):
                    taint |= frozenset(
                        {("order", "iteration over a set")}
                    )
            else:
                taint = _EMPTY
            if env.get(name, _EMPTY) != taint:
                env[name] = taint
                changed = True
        if not changed:
            return state
        return tuple(sorted(env.items()))


def check_function(unit: FunctionUnit, rel_path: str) -> List[Diagnostic]:
    """Run the DET taint rules over one function."""
    analysis = _TaintAnalysis()
    in_states = analysis.run(unit.cfg)
    diags: List[Diagnostic] = []
    seen: Set[Tuple[str, int, str]] = set()
    for node in unit.cfg.stmt_nodes():
        if node.index not in in_states or node.stmt is None:
            continue
        ev = _TaintEval(dict(in_states[node.index]))
        for call in ast.walk(node.stmt):
            if not isinstance(call, ast.Call):
                continue
            sink = _sink_of(call)
            if sink is None:
                continue
            tainted: Dict[str, str] = {}
            for expr in sink.payload:
                for kind, desc in ev.taint(expr):
                    if kind in KIND_RULES:
                        tainted.setdefault(kind, desc)
            for kind in sorted(tainted):
                rule_id = KIND_RULES[kind]
                key = (rule_id, call.lineno, sink.description)
                if key in seen:
                    continue
                seen.add(key)
                diags.append(Diagnostic.of(
                    rule_id,
                    f"value tainted by {tainted[kind]} flows into "
                    f"{sink.description} in {unit.qualname}",
                    file=rel_path, line=call.lineno,
                ))
    return diags
