"""Whole-program dataflow analysis for the flow-layer lint rules.

The third lint layer (after ``domain`` and ``code``): per-function
control-flow graphs with forward dataflow solving, powering rule
families that need to reason about *paths* rather than single AST
nodes. See :mod:`repro.lint.flowgraph.engine` for the entry points and
``docs/static_analysis.md`` for the architecture.
"""

from repro.lint.flowgraph.cfg import (
    CFG,
    CFGNode,
    FunctionUnit,
    build_cfg,
    iter_functions,
)
from repro.lint.flowgraph.dataflow import ForwardAnalysis, ReachingDefinitions
from repro.lint.flowgraph.engine import flow_rule_ids, lint_deep, lint_module_deep

__all__ = [
    "CFG",
    "CFGNode",
    "ForwardAnalysis",
    "FunctionUnit",
    "ReachingDefinitions",
    "build_cfg",
    "flow_rule_ids",
    "iter_functions",
    "lint_deep",
    "lint_module_deep",
]
