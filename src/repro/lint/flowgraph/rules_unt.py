"""UNT0xx — physical-dimension inference over :mod:`repro.units`.

The codebase keeps every quantity in SI (seconds, farads, ohms, meters)
and scales literals with the :mod:`repro.units` constants: ``20 * PS``,
``5 * FF``. The code-layer rule UNIT001 catches *bare* magnitudes; this
family goes further and propagates **dimension vectors** through
assignments and arithmetic, so it can prove that ``slew + load`` adds
seconds to farads even when both operands are plain local variables.

Dimensions are SI exponent vectors ``(kg, m, s, A)``; that makes the
algebra exact — multiplying an ``OHM``-derived value by an ``FF``-derived
one *correctly* yields time (``R·C``), so the Elmore-delay idiom
``r * c`` never false-positives.

* ``UNT001`` (error) — ``+``/``-`` between operands of different known
  dimensions, or between a dimensioned value and a bare nonzero number
  (an unscaled magnitude — the cross-function version of UNIT001).
* ``UNT002`` (warning) — ordering comparison between different known
  dimensions (``slew < load`` is meaningless even though it runs).
* ``UNT003`` (error) — a unit-conversion helper applied to the wrong
  quantity: ``to_ps`` expects seconds, ``to_ff`` expects farads.

Inference is deliberately optimistic about the unknown: an untyped
variable times a unit constant takes the constant's dimension (the
``n * PS`` scaling idiom), a zero constant is polymorphic (``acc = 0.0``
then ``acc += delay`` is fine), and unknown-vs-known additions stay
silent. Only *provable* mismatches fire.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.core import Diagnostic, Rule, Severity, register_rule
from repro.lint.flowgraph.cfg import FunctionUnit, iter_functions
from repro.lint.flowgraph.dataflow import (
    ForwardAnalysis,
    assignments_of,
    call_name,
    ref_name,
)

register_rule(Rule(
    "UNT001", "flow", Severity.ERROR,
    "addition/subtraction between different physical dimensions, or "
    "between a dimensioned value and an unscaled bare number",
    "seconds plus farads is never meaningful; a bare literal added to a "
    "dimensioned value is almost always a missing unit constant",
))
register_rule(Rule(
    "UNT002", "flow", Severity.WARNING,
    "comparison between values of different physical dimensions",
    "orderings across dimensions (slew < load) type-check in Python but "
    "encode a unit confusion",
))
register_rule(Rule(
    "UNT003", "flow", Severity.ERROR,
    "unit-conversion helper applied to a quantity of the wrong dimension",
    "to_ps() divides by PS and expects seconds; feeding it farads "
    "silently reports nonsense magnitudes",
))

#: SI exponent vector: (kg, m, s, A).
DimVec = Tuple[int, int, int, int]

_TIME: DimVec = (0, 0, 1, 0)
_CAP: DimVec = (-1, -2, 4, 2)
_RES: DimVec = (1, 2, -3, -2)
_LEN: DimVec = (0, 1, 0, 0)
_VOLT: DimVec = (1, 2, -3, -1)
_CUR: DimVec = (0, 0, 0, 1)
_DIMLESS: DimVec = (0, 0, 0, 0)

#: repro.units constant → dimension vector.
UNIT_DIMS: Dict[str, DimVec] = {
    "S": _TIME, "MS": _TIME, "US": _TIME, "NS": _TIME,
    "PS": _TIME, "FS": _TIME,
    "F": _CAP, "PF": _CAP, "FF": _CAP, "AF": _CAP,
    "OHM": _RES, "KOHM": _RES, "MEGOHM": _RES,
    "M": _LEN, "UM": _LEN, "NM": _LEN,
    "V": _VOLT, "MV": _VOLT,
    "A": _CUR, "MA": _CUR, "UA": _CUR, "NA": _CUR,
}

#: conversion helper → dimension its argument must have.
CONVERTER_DIMS: Dict[str, DimVec] = {"to_ps": _TIME, "to_ff": _CAP}

_DIM_NAMES: Dict[DimVec, str] = {
    _TIME: "time [s]", _CAP: "capacitance [F]", _RES: "resistance [Ω]",
    _LEN: "length [m]", _VOLT: "voltage [V]", _CUR: "current [A]",
    _DIMLESS: "dimensionless",
    (0, 0, -1, 0): "frequency [1/s]",
}


def _fmt(vec: DimVec) -> str:
    if vec in _DIM_NAMES:
        return _DIM_NAMES[vec]
    parts = [f"{sym}^{exp}" for sym, exp in zip("kg m s A".split(), vec) if exp]
    return "·".join(parts) or "dimensionless"


# Abstract values (all hashable, so the dataflow state stays a tuple):
#   ("dim", vec)  known dimension
#   ("zero",)     zero constant — polymorphic, joins with anything
#   ("num",)      bare nonzero number (dimensionless *and* unscaled)
#   None          unknown
Value = Optional[Tuple]

_ZERO: Value = ("zero",)
_NUM: Value = ("num",)


def _join_val(a: Value, b: Value) -> Value:
    if a == b:
        return a
    if a == _ZERO:
        return b
    if b == _ZERO:
        return a
    return None


# ----------------------------------------------------------------------
# Module environment: which local names denote unit constants / helpers
# ----------------------------------------------------------------------
class UnitsEnv:
    """Resolves names to :mod:`repro.units` constants for one module."""

    def __init__(self, tree: ast.Module):
        self.constants: Dict[str, DimVec] = {}
        self.converters: Dict[str, DimVec] = {}
        self.module_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "repro.units":
                    for alias in node.names:
                        local = alias.asname or alias.name
                        if alias.name in UNIT_DIMS:
                            self.constants[local] = UNIT_DIMS[alias.name]
                        elif alias.name in CONVERTER_DIMS:
                            self.converters[local] = CONVERTER_DIMS[alias.name]
                elif node.module == "repro":
                    for alias in node.names:
                        if alias.name == "units":
                            self.module_aliases.add(alias.asname or "units")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "repro.units":
                        self.module_aliases.add(alias.asname or "repro.units")

    # ------------------------------------------------------------------
    def constant_dim(self, expr: ast.expr) -> Optional[DimVec]:
        """Dimension of a unit-constant reference, if ``expr`` is one."""
        if isinstance(expr, ast.Name):
            return self.constants.get(expr.id)
        dotted = _dotted(expr)
        if dotted and "." in dotted:
            prefix, _, last = dotted.rpartition(".")
            if prefix in self.module_aliases and last in UNIT_DIMS:
                return UNIT_DIMS[last]
        return None

    def converter_dim(self, call: ast.Call) -> Optional[DimVec]:
        """Expected argument dimension if ``call`` is to_ps/to_ff."""
        dotted = call_name(call)
        if dotted in self.converters:
            return self.converters[dotted]
        if "." in dotted:
            prefix, _, last = dotted.rpartition(".")
            if prefix in self.module_aliases and last in CONVERTER_DIMS:
                return CONVERTER_DIMS[last]
        return None


def _dotted(expr: ast.expr) -> Optional[str]:
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------
#: Builtins transparent to dimension (shape/selection, not arithmetic).
_PASSTHROUGH_CALLS = frozenset({"abs", "min", "max", "sum", "float",
                                "np.abs", "np.minimum", "np.maximum"})


class _UnitEval:
    """Evaluates an expression's abstract dimension; optionally reports.

    The same evaluator runs twice per statement: silently inside the
    dataflow transfer (fixpoint iteration would duplicate findings) and
    once with ``diags`` wired up in the reporting pass.
    """

    def __init__(self, env: UnitsEnv, state: Dict[str, Value],
                 diags: Optional[List[Diagnostic]] = None,
                 rel_path: str = "", qualname: str = ""):
        self.env = env
        self.state = state
        self.diags = diags
        self.rel_path = rel_path
        self.qualname = qualname

    # ------------------------------------------------------------------
    def _emit(self, rule_id: str, message: str, line: int) -> None:
        if self.diags is not None:
            self.diags.append(Diagnostic.of(
                rule_id, f"{message} in {self.qualname}",
                file=self.rel_path, line=line,
            ))

    # ------------------------------------------------------------------
    def value(self, expr: ast.expr) -> Value:
        dim = self.env.constant_dim(expr)
        if dim is not None:
            return ("dim", dim)
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, bool) or not isinstance(
                    expr.value, (int, float)):
                return None
            return _ZERO if expr.value == 0 else _NUM
        name = ref_name(expr)
        if name is not None:
            return self.state.get(name)
        if isinstance(expr, ast.UnaryOp) and isinstance(
                expr.op, (ast.USub, ast.UAdd)):
            return self.value(expr.operand)
        if isinstance(expr, ast.BinOp):
            return self._binop(expr)
        if isinstance(expr, ast.Compare):
            return self._compare(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.IfExp):
            return _join_val(self.value(expr.body), self.value(expr.orelse))
        return None

    # ------------------------------------------------------------------
    def additive(self, left: Value, right: Value, line: int,
                 what: str) -> Value:
        """Check/compute ``left ± right`` (also used for AugAssign)."""
        if left is None or right is None:
            return left if right is None and left is not None else right
        if left == _ZERO:
            return right
        if right == _ZERO:
            return left
        if left[0] == "dim" and right[0] == "dim":
            if left[1] != right[1]:
                self._emit(
                    "UNT001",
                    f"{what} combines {_fmt(left[1])} with {_fmt(right[1])}",
                    line,
                )
                return None
            return left
        if left[0] == "dim" and right == _NUM and left[1] != _DIMLESS:
            self._emit(
                "UNT001",
                f"{what} adds an unscaled bare number to {_fmt(left[1])} "
                f"(missing unit constant?)", line,
            )
            return left
        if right[0] == "dim" and left == _NUM and right[1] != _DIMLESS:
            self._emit(
                "UNT001",
                f"{what} adds an unscaled bare number to {_fmt(right[1])} "
                f"(missing unit constant?)", line,
            )
            return right
        return _join_val(left, right)

    def _binop(self, expr: ast.BinOp) -> Value:
        left = self.value(expr.left)
        right = self.value(expr.right)
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            return self.additive(left, right, expr.lineno,
                                 "addition" if isinstance(expr.op, ast.Add)
                                 else "subtraction")
        if isinstance(expr.op, ast.Mult):
            if left == _ZERO or right == _ZERO:
                return _ZERO
            lv = left[1] if left is not None and left[0] == "dim" else None
            rv = right[1] if right is not None and right[0] == "dim" else None
            if lv is not None and rv is not None:
                return ("dim", tuple(a + b for a, b in zip(lv, rv)))
            # scaling idiom: count × unit → unit (optimistic on unknown)
            if lv is not None:
                return ("dim", lv)
            if rv is not None:
                return ("dim", rv)
            return _NUM if left == _NUM and right == _NUM else None
        if isinstance(expr.op, ast.Div):
            if left == _ZERO:
                return _ZERO
            lv = left[1] if left is not None and left[0] == "dim" else None
            rv = right[1] if right is not None and right[0] == "dim" else None
            if lv is not None and rv is not None:
                return ("dim", tuple(a - b for a, b in zip(lv, rv)))
            # unknown / unit could be a conversion (x / PS) — stay silent
            # rather than invent a rate dimension.
            if lv is not None:
                return ("dim", lv) if right == _NUM else None
            return None
        if isinstance(expr.op, ast.Pow):
            if (left is not None and left[0] == "dim"
                    and isinstance(expr.right, ast.Constant)
                    and isinstance(expr.right.value, int)):
                n = expr.right.value
                return ("dim", tuple(a * n for a in left[1]))
            return None
        return None

    def _compare(self, expr: ast.Compare) -> Value:
        values = [self.value(expr.left)]
        values += [self.value(comp) for comp in expr.comparators]
        known = [(v, c) for v, c in zip(values, [expr.left] + expr.comparators)
                 if v is not None and v[0] == "dim" and v[1] != _DIMLESS]
        for (va, _), (vb, _) in zip(known, known[1:]):
            if va[1] != vb[1]:
                self._emit(
                    "UNT002",
                    f"comparison between {_fmt(va[1])} and {_fmt(vb[1])}",
                    expr.lineno,
                )
        return None

    def _call(self, expr: ast.Call) -> Value:
        expected = self.env.converter_dim(expr)
        if expected is not None:
            if expr.args:
                got = self.value(expr.args[0])
                if (got is not None and got[0] == "dim"
                        and got[1] != expected):
                    self._emit(
                        "UNT003",
                        f"{call_name(expr)}() expects {_fmt(expected)} but "
                        f"receives {_fmt(got[1])}", expr.lineno,
                    )
            for arg in expr.args:
                self.value(arg)
            return _NUM  # reported paper-units magnitude
        if call_name(expr) in _PASSTHROUGH_CALLS and expr.args:
            vals = [self.value(arg) for arg in expr.args]
            out = vals[0]
            for v in vals[1:]:
                out = _join_val(out, v)
            return out
        for arg in expr.args:
            self.value(arg)
        for kw in expr.keywords:
            self.value(kw.value)
        return None


# ----------------------------------------------------------------------
# Dataflow analysis + reporting pass
# ----------------------------------------------------------------------
UnitState = Tuple[Tuple[str, Tuple], ...]


class _UnitAnalysis(ForwardAnalysis[UnitState]):
    def __init__(self, env: UnitsEnv):
        self.env = env

    def initial(self) -> UnitState:
        return ()

    def join(self, a: UnitState, b: UnitState) -> UnitState:
        da, db = dict(a), dict(b)
        merged: Dict[str, Value] = {}
        for var in set(da) | set(db):
            val = _join_val(da.get(var), db.get(var))
            if val is not None:
                merged[var] = val
        return tuple(sorted(merged.items()))

    def transfer(self, node, state: UnitState) -> UnitState:
        if node.stmt is None:
            return state
        env_state = dict(state)
        ev = _UnitEval(self.env, env_state)
        changed = False
        if isinstance(node.stmt, ast.AugAssign):
            from repro.lint.flowgraph.dataflow import target_names
            names = target_names(node.stmt.target)
            rhs = ev.value(node.stmt.value)
            for nm in names:
                if isinstance(node.stmt.op, (ast.Add, ast.Sub)):
                    val = ev.additive(env_state.get(nm), rhs,
                                      node.stmt.lineno, "augmented assignment")
                else:
                    val = None
                if env_state.get(nm) != val:
                    changed = True
                    if val is None:
                        env_state.pop(nm, None)
                    else:
                        env_state[nm] = val
            return tuple(sorted(
                (k, v) for k, v in env_state.items())) if changed else state
        for name, value_expr in assignments_of(node.stmt):
            val = ev.value(value_expr) if value_expr is not None else None
            if env_state.get(name) != val:
                changed = True
                if val is None:
                    env_state.pop(name, None)
                else:
                    env_state[name] = val
        if not changed:
            return state
        return tuple(sorted((k, v) for k, v in env_state.items()))


def _stmt_header_exprs(stmt: ast.stmt) -> List[ast.expr]:
    """Expressions evaluated *at this CFG node* (compound bodies are
    separate nodes, so only the header's expressions belong here)."""
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, (ast.Expr, ast.Return)):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Assert):
        return [stmt.test]
    return []


def check_function(unit: FunctionUnit, rel_path: str,
                   env: UnitsEnv) -> List[Diagnostic]:
    """Run the UNT dimension rules over one function."""
    analysis = _UnitAnalysis(env)
    in_states = analysis.run(unit.cfg)
    diags: List[Diagnostic] = []
    for node in unit.cfg.stmt_nodes():
        if node.index not in in_states or node.stmt is None:
            continue
        ev = _UnitEval(env, dict(in_states[node.index]), diags=diags,
                       rel_path=rel_path, qualname=unit.qualname)
        if isinstance(node.stmt, ast.AugAssign):
            if isinstance(node.stmt.op, (ast.Add, ast.Sub)):
                from repro.lint.flowgraph.dataflow import target_names
                rhs = ev.value(node.stmt.value)
                for nm in target_names(node.stmt.target):
                    ev.additive(ev.state.get(nm), rhs, node.stmt.lineno,
                                "augmented assignment")
            continue
        for expr in _stmt_header_exprs(node.stmt):
            ev.value(expr)
    # Dedup identical (rule, line, message) from revisited headers.
    seen: Set[Tuple[str, int, str]] = set()
    unique: List[Diagnostic] = []
    for d in diags:
        key = (d.rule_id, d.line, d.message)
        if key not in seen:
            seen.add(key)
            unique.append(d)
    return unique


def check_module(tree: ast.Module, rel_path: str) -> List[Diagnostic]:
    """Run the UNT rules over every function in a module."""
    env = UnitsEnv(tree)
    diags: List[Diagnostic] = []
    for unit in iter_functions(tree):
        diags.extend(check_function(unit, rel_path, env))
    return diags
