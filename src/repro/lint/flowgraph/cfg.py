"""Per-function control-flow graphs over the Python AST.

The deep lint rules (:mod:`repro.lint.flowgraph`) reason about *paths*
— a nondeterministic value flowing into a cache payload, a shared-memory
segment left unreleased on an exception path — so they need more than
the single-node AST walk of :mod:`repro.lint.codebase`. This module
builds a statement-granularity CFG for every function in a module:

* one :class:`CFGNode` per simple statement and per compound-statement
  *header* (the ``if``/``while`` test, the ``for`` iterable binding,
  the ``with`` context acquisition);
* synthetic ``entry`` / ``exit`` nodes, plus one ``dispatch`` node per
  ``try`` modelling "an exception escaped the body";
* **normal edges** for sequencing, branching and loop back-edges;
* **exception edges** from every may-raise statement to the innermost
  enclosing handler dispatch (or straight to ``exit`` when uncaught —
  abnormal termination is a path like any other).

Approximations, chosen to keep the graph small and the rules sound for
linting (documented in ``docs/static_analysis.md``):

* A ``finally`` body is built once and shared by every route into it
  (normal fall-through, caught/uncaught exceptions, early ``return``);
  its exit fans out to the normal continuation. This *adds* paths
  (an uncaught exception appears able to continue normally), which can
  only create false positives for must-analyses, never mask a path.
* ``return`` routes through the innermost pending ``finally`` when one
  exists, else straight to ``exit``.
* Only statements that can plausibly raise (anything containing a
  call, subscript, attribute access, arithmetic, or an explicit
  ``raise``/``assert``) get exception edges.

The graph is deliberately self-contained: nodes carry their AST
statement, so every dataflow analysis is one worklist pass away
(:mod:`repro.lint.flowgraph.dataflow`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

#: AST statement types whose evaluation can raise at runtime even
#: without containing a call (subscripts, attribute lookups, division).
_MAYRAISE_EXPR_NODES = (
    ast.Call, ast.Subscript, ast.Attribute, ast.BinOp, ast.UnaryOp,
    ast.Compare, ast.Starred, ast.FormattedValue,
)

FunctionAst = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class CFGNode:
    """One CFG node: a statement (or synthetic marker) plus its edges."""

    index: int
    #: ``"entry"`` / ``"exit"`` / ``"dispatch"`` / ``"finally"`` /
    #: ``"stmt"``.
    kind: str
    #: The AST statement for ``stmt`` nodes (compound statements appear
    #: as their header; their bodies are separate nodes). ``None`` for
    #: synthetic nodes.
    stmt: Optional[ast.stmt] = None
    #: Successor node indices (normal + exception edges merged; the
    #: analyses here do not need to distinguish the edge kind).
    succs: Set[int] = field(default_factory=set)
    preds: Set[int] = field(default_factory=set)

    @property
    def lineno(self) -> int:
        return getattr(self.stmt, "lineno", 0)


class CFG:
    """Control-flow graph of one function (or module top level)."""

    def __init__(self, name: str = "<cfg>"):
        self.name = name
        self.nodes: List[CFGNode] = []
        #: ``(src, dst)`` pairs that model "an exception escaped src".
        #: Analyses that care (resource lifecycle) propagate a different
        #: state along these; taint-style analyses can ignore them.
        self.exc_edges: Set[Tuple[int, int]] = set()
        self.entry = self._new("entry")
        self.exit = self._new("exit")

    # ------------------------------------------------------------------
    def _new(self, kind: str, stmt: Optional[ast.stmt] = None) -> int:
        node = CFGNode(index=len(self.nodes), kind=kind, stmt=stmt)
        self.nodes.append(node)
        return node.index

    def add_edge(self, src: int, dst: int, exc: bool = False) -> None:
        self.nodes[src].succs.add(dst)
        self.nodes[dst].preds.add(src)
        if exc:
            self.exc_edges.add((src, dst))

    # ------------------------------------------------------------------
    def stmt_nodes(self) -> Iterator[CFGNode]:
        """Every non-synthetic node, in creation (≈ source) order."""
        return (n for n in self.nodes if n.kind == "stmt")

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CFG({self.name!r}, {len(self.nodes)} nodes)"


@dataclass
class _Context:
    """Builder state threaded through one statement region."""

    #: Node receiving exception edges (a dispatch node, a finally
    #: entry, or the CFG exit).
    exc_target: int
    #: ``continue`` target of the innermost loop (None outside loops);
    #: ``break`` nodes are collected on the builder's loop stack.
    continue_target: Optional[int] = None
    #: Innermost pending ``finally`` entry that an early ``return``
    #: must route through (None → straight to exit).
    return_via: Optional[int] = None


def _may_raise(stmt: ast.stmt) -> bool:
    """Whether executing ``stmt`` (header only) can raise."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    # Compound statements: only their header expression is evaluated at
    # this node, but scanning the whole subtree merely over-approximates.
    for sub in ast.walk(stmt):
        if isinstance(sub, _MAYRAISE_EXPR_NODES):
            return True
    return False


class _Builder:
    """Recursive-descent CFG construction with dangling-exit threading."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        #: Stack of per-loop lists collecting `break` node indices.
        self._loop_breaks: List[List[int]] = []

    # ------------------------------------------------------------------
    def build(self, body: Sequence[ast.stmt]) -> None:
        ctx = _Context(exc_target=self.cfg.exit)
        open_exits = self._seq(body, [self.cfg.entry], ctx)
        for src in open_exits:
            self.cfg.add_edge(src, self.cfg.exit)

    # ------------------------------------------------------------------
    def _seq(self, stmts: Sequence[ast.stmt], incoming: List[int],
             ctx: _Context) -> List[int]:
        """Wire a statement list; returns the dangling normal exits."""
        current = incoming
        for stmt in stmts:
            if not current:
                # Unreachable code after return/raise/break: still build
                # nodes (rules may want them) but leave them unentered.
                pass
            current = self._stmt(stmt, current, ctx)
        return current

    def _node(self, stmt: ast.stmt, incoming: List[int],
              ctx: _Context) -> int:
        idx = self.cfg._new("stmt", stmt)
        for src in incoming:
            self.cfg.add_edge(src, idx)
        if _may_raise(stmt):
            self.cfg.add_edge(idx, ctx.exc_target, exc=True)
        return idx

    # ------------------------------------------------------------------
    def _stmt(self, stmt: ast.stmt, incoming: List[int],
              ctx: _Context) -> List[int]:
        if isinstance(stmt, (ast.If,)):
            head = self._node(stmt, incoming, ctx)
            body_exits = self._seq(stmt.body, [head], ctx)
            if stmt.orelse:
                else_exits = self._seq(stmt.orelse, [head], ctx)
            else:
                else_exits = [head]
            return body_exits + else_exits

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = self._node(stmt, incoming, ctx)
            loop_ctx = _Context(
                exc_target=ctx.exc_target,
                continue_target=head,
                return_via=ctx.return_via,
            )
            breaks: List[int] = []
            self._loop_breaks.append(breaks)
            body_exits = self._seq(stmt.body, [head], loop_ctx)
            self._loop_breaks.pop()
            for src in body_exits:
                self.cfg.add_edge(src, head)
            # Normal loop exit (condition false / iterator exhausted)
            # falls through the head; `orelse` runs on that path.
            after: List[int] = [head]
            if stmt.orelse:
                after = self._seq(stmt.orelse, [head], ctx)
            return after + breaks

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = self._node(stmt, incoming, ctx)
            return self._seq(stmt.body, [head], ctx)

        if isinstance(stmt, ast.Try):
            return self._try(stmt, incoming, ctx)

        if isinstance(stmt, ast.Return):
            idx = self._node(stmt, incoming, ctx)
            target = ctx.return_via if ctx.return_via is not None else self.cfg.exit
            self.cfg.add_edge(idx, target)
            return []

        if isinstance(stmt, ast.Raise):
            idx = self._node(stmt, incoming, ctx)
            # _node already added the exception edge (Raise may-raises).
            return []

        if isinstance(stmt, ast.Break):
            idx = self._node(stmt, incoming, ctx)
            if self._current_breaks() is not None:
                self._current_breaks().append(idx)
            return []

        if isinstance(stmt, ast.Continue):
            idx = self._node(stmt, incoming, ctx)
            if ctx.continue_target is not None:
                self.cfg.add_edge(idx, ctx.continue_target)
            return []

        # Simple statement (assign, expr, import, nested def, ...).
        idx = self._node(stmt, incoming, ctx)
        return [idx]

    def _current_breaks(self) -> Optional[List[int]]:
        return self._loop_breaks[-1] if self._loop_breaks else None

    # ------------------------------------------------------------------
    def _try(self, stmt: ast.Try, incoming: List[int],
             ctx: _Context) -> List[int]:
        # Build the shared finally subgraph first (if any) so body,
        # handlers and early returns can all target its entry.
        finally_entry: Optional[int] = None
        finally_exits: List[int] = []
        if stmt.finalbody:
            # A synthetic entry node gives every route into the finally
            # (fall-through, exceptions, early returns) one target; the
            # body builds normally after it, so nested compound
            # statements inside the finally get real subgraphs.
            finally_entry = self.cfg._new("finally")
            finally_exits = self._seq(
                stmt.finalbody, [finally_entry], ctx
            )

        after_exc = finally_entry if finally_entry is not None else ctx.exc_target
        dispatch = self.cfg._new("dispatch")
        body_ctx = _Context(
            exc_target=dispatch,
            continue_target=ctx.continue_target,
            return_via=finally_entry if finally_entry is not None else ctx.return_via,
        )
        body_exits = self._seq(stmt.body, incoming, body_ctx)

        handler_exits: List[int] = []
        handler_ctx = _Context(
            exc_target=after_exc,
            continue_target=ctx.continue_target,
            return_via=body_ctx.return_via,
        )
        for handler in stmt.handlers:
            entry = self.cfg._new("stmt", handler)  # type: ignore[arg-type]
            self.cfg.add_edge(dispatch, entry)
            handler_exits += self._seq(handler.body, [entry], handler_ctx)
        # An exception no handler catches (or none declared) propagates:
        # through the finally when present, else to the outer target.
        self.cfg.add_edge(dispatch, after_exc)

        if stmt.orelse:
            body_exits = self._seq(stmt.orelse, body_exits, handler_ctx)

        normal_in = body_exits + handler_exits
        if finally_entry is not None:
            for src in normal_in:
                self.cfg.add_edge(src, finally_entry)
            return finally_exits if finally_exits else [finally_entry]
        return normal_in


def build_cfg(func: Union[FunctionAst, ast.Module],
              name: str = "") -> CFG:
    """Build the CFG of one function (or a module's top-level code)."""
    label = name or getattr(func, "name", "<module>")
    cfg = CFG(label)
    _Builder(cfg).build(func.body)
    return cfg


# ----------------------------------------------------------------------
# Function discovery
# ----------------------------------------------------------------------
@dataclass
class FunctionUnit:
    """One analyzable function: its AST, CFG and context."""

    func: FunctionAst
    #: Dotted context, e.g. ``"DelayCalibrationFlow.characterize"``.
    qualname: str
    #: Enclosing class name ("" for module-level functions).
    class_name: str
    cfg: CFG

    @property
    def name(self) -> str:
        return self.func.name


def iter_functions(tree: ast.Module) -> List[FunctionUnit]:
    """Every function/method in a module (nested functions included),
    each with its CFG built. Lambdas and comprehensions stay part of
    their enclosing function's statements."""
    units: List[FunctionUnit] = []

    def visit(node: ast.AST, prefix: str, class_name: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                units.append(FunctionUnit(
                    func=child, qualname=qual, class_name=class_name,
                    cfg=build_cfg(child, qual),
                ))
                visit(child, f"{qual}.", class_name)
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.", child.name)
            elif isinstance(child, (ast.If, ast.Try, ast.With, ast.For,
                                    ast.While)):
                # Functions defined under conditional module-level code.
                visit(child, prefix, class_name)

    visit(tree, "", "")
    return units
