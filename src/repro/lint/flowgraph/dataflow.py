"""Generic forward dataflow over :class:`~repro.lint.flowgraph.cfg.CFG`.

One worklist solver serves every deep rule family. An analysis supplies
four pieces — initial state, join, equality, transfer — and gets back
the fixpoint IN-state of every node. States are treated as immutable
values (analyses return fresh dicts from ``transfer``), which keeps the
solver trivially correct at the cost of some copying; functions in this
codebase are small enough that this has never shown up in profiles.

Also home to the expression-walk helpers shared by the rule families:
assignment-target extraction and a tiny reaching-definitions analysis
used by tests and by rule authors who need use-def chains.
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Generic,
    Iterable,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.lint.flowgraph.cfg import CFG, CFGNode

S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """Base class for forward dataflow analyses.

    Subclasses implement :meth:`initial`, :meth:`join` and
    :meth:`transfer`; :meth:`run` computes the least fixpoint with a
    standard worklist. States must be equality-comparable values;
    ``transfer`` must not mutate its input.
    """

    def initial(self) -> S:
        """State entering the CFG (at the entry node)."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        """Least upper bound of two states (control-flow merge)."""
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: S) -> S:
        """State after executing ``node`` given the state before it."""
        raise NotImplementedError

    def transfer_exc(self, node: CFGNode, state: S) -> S:
        """State carried along ``node``'s *exception* edges.

        Default: same as :meth:`transfer`. Analyses where a partially
        executed statement matters (resource lifecycle: an acquisition
        that raised never acquired) override this.
        """
        return self.transfer(node, state)

    # ------------------------------------------------------------------
    def run(self, cfg: CFG) -> Dict[int, S]:
        """Fixpoint IN-states, keyed by node index.

        Nodes never reached from the entry (dead code) are absent from
        the result — rules should treat a missing IN-state as
        "unreachable, nothing to report".
        """
        in_states: Dict[int, S] = {cfg.entry: self.initial()}
        out_states: Dict[int, Tuple[S, S]] = {}
        worklist: List[int] = [cfg.entry]
        while worklist:
            idx = worklist.pop()
            node = cfg.nodes[idx]
            out = self.transfer(node, in_states[idx])
            out_exc = self.transfer_exc(node, in_states[idx])
            if idx in out_states and out_states[idx] == (out, out_exc):
                continue
            out_states[idx] = (out, out_exc)
            for succ in node.succs:
                carried = (
                    out_exc if (idx, succ) in cfg.exc_edges else out
                )
                merged = (
                    self.join(in_states[succ], carried)
                    if succ in in_states else carried
                )
                if succ not in in_states or in_states[succ] != merged:
                    in_states[succ] = merged
                    worklist.append(succ)
        return in_states


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def target_names(target: ast.expr) -> List[str]:
    """Variable names bound by an assignment target.

    ``a`` → ``["a"]``; ``a, b`` / ``[a, b]`` → ``["a", "b"]``;
    ``self.x`` → ``["self.x"]`` (tracked as a pseudo-variable);
    starred targets unwrap; subscripts and foreign attributes bind no
    tracked name.
    """
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return target_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for elt in target.elts:
            names.extend(target_names(elt))
        return names
    if (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"):
        return [f"self.{target.attr}"]
    return []


def ref_name(expr: ast.expr) -> Optional[str]:
    """The tracked variable name an expression reads, if any.

    Mirror of :func:`target_names` for the load side: plain names and
    ``self.x`` attributes resolve; anything else is None.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if (isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"):
        return f"self.{expr.attr}"
    return None


def assignments_of(stmt: ast.stmt) -> List[Tuple[str, Optional[ast.expr]]]:
    """``(name, value_expr)`` pairs a statement binds.

    Covers ``Assign`` (chained targets share the value), ``AnnAssign``,
    ``AugAssign`` (value None — the transfer must combine old and new),
    ``For`` headers (target bound from the iterable, value None),
    ``With`` items (``as`` names bound from the context expression) and
    ``NamedExpr`` walruses anywhere in the statement.
    """
    pairs: List[Tuple[str, Optional[ast.expr]]] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            for name in target_names(target):
                pairs.append((name, stmt.value))
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        for name in target_names(stmt.target):
            pairs.append((name, stmt.value))
    elif isinstance(stmt, ast.AugAssign):
        for name in target_names(stmt.target):
            pairs.append((name, None))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in target_names(stmt.target):
            pairs.append((name, None))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                for name in target_names(item.optional_vars):
                    pairs.append((name, item.context_expr))
    for sub in ast.walk(stmt):
        if isinstance(sub, ast.NamedExpr):
            for name in target_names(sub.target):
                pairs.append((name, sub.value))
    return pairs


def call_name(call: ast.Call) -> str:
    """Dotted name of a call target: ``a.b.c(...)`` → ``"a.b.c"``."""
    parts: List[str] = []
    node: ast.expr = call.func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call):
        inner = call_name(node)
        parts.append(f"{inner}()" if inner else "()")
    else:
        parts.append("")
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Reaching definitions (classic, for tests and rule authors)
# ----------------------------------------------------------------------
ReachingState = Dict[str, FrozenSet[int]]


class ReachingDefinitions(ForwardAnalysis[Tuple[Tuple[str, FrozenSet[int]], ...]]):
    """Which assignment lines can reach each node, per variable.

    State is a sorted tuple of ``(var, {def_linenos})`` pairs — an
    immutable encoding of a dict — so the generic solver's equality
    checks work unmodified.
    """

    def initial(self):
        return ()

    def join(self, a, b):
        merged: Dict[str, FrozenSet[int]] = dict(a)
        for var, lines in b:
            merged[var] = merged.get(var, frozenset()) | lines
        return tuple(sorted(merged.items()))

    def transfer(self, node, state):
        if node.stmt is None:
            return state
        bound = [name for name, _ in assignments_of(node.stmt)]
        if not bound:
            return state
        merged = dict(state)
        for name in bound:
            merged[name] = frozenset({node.lineno})
        return tuple(sorted(merged.items()))

    # ------------------------------------------------------------------
    def defs_at(self, cfg: CFG) -> Dict[int, Dict[str, FrozenSet[int]]]:
        """Convenience: fixpoint states as plain dicts per node index."""
        return {idx: dict(state) for idx, state in self.run(cfg).items()}
