"""Deep-lint engine: runs every flow-layer rule family over source.

Mirrors :mod:`repro.lint.codebase` one layer up: where the code layer
visits single AST nodes, this engine builds per-function CFGs
(:mod:`repro.lint.flowgraph.cfg`), runs the dataflow rule families —

* DET0xx determinism taint (:mod:`~repro.lint.flowgraph.rules_det`),
* CKY0xx cache-key completeness (:mod:`~repro.lint.flowgraph.rules_cky`),
* UNT0xx unit-dimension inference (:mod:`~repro.lint.flowgraph.rules_unt`),
* RES0xx resource lifecycle (:mod:`~repro.lint.flowgraph.rules_res`)

— and folds their diagnostics through the shared suppression-comment
machinery into one :class:`~repro.lint.core.LintReport`. Entry points:
:func:`lint_module_deep` for one source text, :func:`lint_deep` for a
tree (what ``repro lint --deep`` and the CI deep-lint job call).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import FrozenSet, Iterable, List, Optional, Union

from repro.lint.core import Diagnostic, LintReport, Suppressions, all_rules
from repro.lint.flowgraph.cfg import iter_functions
from repro.lint.flowgraph import rules_cky, rules_det, rules_res, rules_unt
from repro.lint.flowgraph.rules_unt import UnitsEnv


def flow_rule_ids() -> FrozenSet[str]:
    """Rule IDs the deep pass can emit (flow layer + shared LNT001)."""
    return frozenset(
        {r.rule_id for r in all_rules(layer="flow")} | {"LNT001"}
    )


def lint_module_deep(source: str, rel_path: str = "<string>") -> LintReport:
    """Run every flow-layer rule family over one module's source text."""
    report = LintReport()
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        # Same contract as the code layer: an unparsable file is a
        # diagnostic, not a crash.
        report.emit(
            "ERR001", f"cannot parse {rel_path}: {exc}",
            file=rel_path, line=exc.lineno or 0,
        )
        return report

    diags: List[Diagnostic] = []
    units_env = UnitsEnv(tree)
    for unit in iter_functions(tree):
        diags.extend(rules_det.check_function(unit, rel_path))
        diags.extend(rules_unt.check_function(unit, rel_path, units_env))
        diags.extend(rules_res.check_function(unit, rel_path))
    diags.extend(rules_cky.check_module(tree, rel_path))
    diags.sort(key=lambda d: (d.line, d.rule_id, d.message))

    suppressions = Suppressions(source, scope=flow_rule_ids())
    for diag in diags:
        if suppressions.active(diag.rule_id, diag.line):
            report.suppressed += 1
            continue
        report.add(diag)
    for lineno, token in suppressions.unused():
        if suppressions.active("LNT001", lineno):
            report.suppressed += 1
            continue
        report.emit(
            "LNT001",
            f"suppression `disable={token}` matched no finding of this "
            f"pass; delete it or fix the rule ID",
            file=rel_path, line=lineno,
        )
    return report


def lint_deep(
    root: Optional[Union[str, Path]] = None,
    relative_to: Optional[Union[str, Path]] = None,
) -> LintReport:
    """Run the deep pass over every ``.py`` file under ``root``.

    Defaults mirror :func:`repro.lint.codebase.lint_codebase`: ``root``
    is the installed :mod:`repro` package, paths are reported relative
    to ``relative_to`` (default ``root``'s parent).
    """
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    root = Path(root)
    base = Path(relative_to) if relative_to is not None else root.parent
    report = LintReport()
    if root.is_file():
        files: Iterable[Path] = [root]
    else:
        files = sorted(
            p for p in root.rglob("*.py") if "__pycache__" not in p.parts
        )
    for path in files:
        try:
            rel = str(path.relative_to(base))
        except ValueError:
            rel = str(path)
        report.extend(lint_module_deep(path.read_text(), rel_path=rel))
    return report
