"""CKY0xx — cache-key completeness for cached producer functions.

PR 3 and PR 5 each patched the same bug class by hand: a new knob
(calibration digest, kernel backend identity) changed results but was
not part of the cache key, so stale artifacts kept hitting until
someone noticed numbers that could not have come from the current
code. These rules turn that into a checked invariant: for every
*cached producer* (a function whose output is stored under a content
key), **every instance attribute it reads that can change its result
must be incorporated into the key**.

The check is specification-driven: a :class:`CacheKeySpec` names the
producer methods, the key-derivation methods, and an explicit
allowlist of attributes that genuinely cannot change results
(fault-tolerance knobs, perf counters, memo slots) — every allowlist
entry is a reviewed claim, visible in one place, instead of an
implicit assumption spread across the codebase.

* ``CKY001`` (error) — a producer reads ``self.X`` but no key method
  does, and ``X`` is not allowlisted: the bug class above, for every
  future knob.
* ``CKY002`` (warning) — a key method reads ``self.X`` but no producer
  does: a dead key component, usually a leftover from a removed knob;
  it fragments the cache for no reason.
* ``CKY003`` (warning) — ``content_key(..., versioned=False)``: the
  caller opts out of the version salt; legitimate only for keys that
  must survive releases, so each use deserves an explicit suppression
  arguing why.

Attribute reads are collected transitively through same-class helper
calls (``self._fit_wire()`` → its reads count toward the producer), so
splitting a producer into helpers cannot hide a read.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.core import Diagnostic, Rule, Severity, register_rule

register_rule(Rule(
    "CKY001", "flow", Severity.ERROR,
    "cached producer reads an instance attribute that is not part of its "
    "cache key (and not allowlisted as result-neutral)",
    "a result-affecting knob outside the key means changing it replays "
    "stale cached artifacts — the PR3/PR5 calibration-digest and "
    "kernel-identity bugs, generalized",
))
register_rule(Rule(
    "CKY002", "flow", Severity.WARNING,
    "cache-key component never read by any cached producer",
    "a dead key component fragments the cache (new key, same bytes) and "
    "usually marks a removed knob whose cleanup was forgotten",
))
register_rule(Rule(
    "CKY003", "flow", Severity.WARNING,
    "content_key(..., versioned=False) bypasses the version salt",
    "unversioned keys let artifacts produced by older physics survive a "
    "release; every opt-out needs an explicit justification",
))


@dataclass(frozen=True)
class CacheKeySpec:
    """Declares one class whose producers are cache-key checked.

    Attributes
    ----------
    class_name:
        Class to check (matched by bare name in any module).
    producers:
        Methods whose results are stored under the cache key.
    key_methods:
        Methods that derive the key; every ``self.X`` they read counts
        as *incorporated*.
    allowed:
        Attributes exempt from CKY001 — reviewed as result-neutral.
        Keep the reason next to each entry in the spec definition.
    constructors:
        Methods whose reads count as *consumption* for CKY002 (but do
        not make them producers for CKY001): a key component consumed
        while building a derived object in ``__init__`` — e.g. a
        kernel name handed to an engine — is live, not dead.
    """

    class_name: str
    producers: Tuple[str, ...]
    key_methods: Tuple[str, ...]
    allowed: FrozenSet[str] = frozenset()
    constructors: Tuple[str, ...] = ("__init__",)


#: The shipped specs. Allowlist rationale (one claim per entry):
#: - engine/library: constructed in __init__ purely from salted knobs
#:   (tech, variation, seed, kernel) — their identity is the knobs'.
#: - perf/journal: observability side-channels; never feed results.
#: - workers/max_retries/task_timeout/quarantine_budget/resume:
#:   fault-tolerance and fan-out knobs; results are bit-identical for
#:   any value by the PR1/PR4 worker-count-invariance contract.
#: - cache_dir: where artifacts live, not what they contain.
#: - _charac/_models: memo slots for the producers' own outputs.
#: - nsigma_fit_samples: incorporated via the _cache_path suffix.
DEFAULT_SPECS: Tuple[CacheKeySpec, ...] = (
    CacheKeySpec(
        class_name="DelayCalibrationFlow",
        producers=("characterize", "fit_models"),
        key_methods=("_cache_key", "_cache_path"),
        allowed=frozenset({
            "engine", "library", "perf", "journal",
            "workers", "max_retries", "task_timeout",
            "quarantine_budget", "resume", "cache_dir",
            "_charac", "_models",
        }),
    ),
)


# ----------------------------------------------------------------------
def _self_attr_reads(func: ast.AST) -> Dict[str, int]:
    """``self.X`` attribute loads in a function: attr → first line."""
    reads: Dict[str, int] = {}
    for node in ast.walk(func):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            reads.setdefault(node.attr, node.lineno)
    return reads


def _self_method_calls(func: ast.AST) -> Set[str]:
    """Names of same-class methods invoked (or referenced) via ``self``."""
    called: Set[str] = set()
    for node in ast.walk(func):
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            called.add(node.attr)
    return called


def _transitive_reads(
    start: str, methods: Dict[str, ast.AST], stop: Set[str]
) -> Dict[str, int]:
    """Attribute reads of ``start`` plus every same-class helper it
    reaches (depth-first, cycle-safe), excluding methods in ``stop``."""
    seen: Set[str] = set()
    reads: Dict[str, int] = {}
    stack = [start]
    while stack:
        name = stack.pop()
        if name in seen or name in stop:
            continue
        seen.add(name)
        func = methods.get(name)
        if func is None:
            continue
        for attr, line in _self_attr_reads(func).items():
            if attr in methods:
                if attr not in seen:
                    stack.append(attr)
                continue
            reads.setdefault(attr, line)
        for callee in _self_method_calls(func):
            if callee in methods and callee not in seen:
                stack.append(callee)
    return reads


# ----------------------------------------------------------------------
def check_module(
    tree: ast.Module,
    rel_path: str,
    specs: Sequence[CacheKeySpec] = DEFAULT_SPECS,
) -> List[Diagnostic]:
    """Run the CKY rules over one module's AST."""
    diags: List[Diagnostic] = []
    by_name = {spec.class_name: spec for spec in specs}

    for node in ast.walk(tree):
        # CKY003 applies everywhere, spec or not.
        if isinstance(node, ast.Call):
            fname = node.func
            callee = (
                fname.id if isinstance(fname, ast.Name)
                else fname.attr if isinstance(fname, ast.Attribute) else ""
            )
            if callee == "content_key":
                for kw in node.keywords:
                    if (kw.arg == "versioned"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is False):
                        diags.append(Diagnostic.of(
                            "CKY003",
                            "content_key(versioned=False) bypasses the "
                            "version salt; justify with a suppression if "
                            "the key must survive releases",
                            file=rel_path, line=node.lineno,
                        ))
        if not isinstance(node, ast.ClassDef) or node.name not in by_name:
            continue
        spec = by_name[node.name]
        methods: Dict[str, ast.AST] = {
            item.name: item
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

        incorporated: Dict[str, int] = {}
        for key_method in spec.key_methods:
            func = methods.get(key_method)
            if func is None:
                continue
            for attr, line in _self_attr_reads(func).items():
                if attr not in methods:
                    incorporated.setdefault(attr, line)

        producer_reads: Dict[str, Dict[str, int]] = {}
        for producer in spec.producers:
            if producer not in methods:
                continue
            producer_reads[producer] = _transitive_reads(
                producer, methods, stop=set(spec.key_methods)
            )

        # CKY001: read by a producer, absent from the key, not allowed.
        for producer, reads in sorted(producer_reads.items()):
            for attr, line in sorted(reads.items(), key=lambda kv: kv[1]):
                if attr in incorporated or attr in spec.allowed:
                    continue
                diags.append(Diagnostic.of(
                    "CKY001",
                    f"{node.name}.{producer} reads self.{attr}, which is "
                    f"not incorporated into "
                    f"{'/'.join(spec.key_methods)} and not allowlisted "
                    f"as result-neutral",
                    file=rel_path, line=line,
                ))

        # CKY002: in the key, never read by any producer — nor consumed
        # at construction time (deriving engine/library from key knobs).
        all_reads: Set[str] = set()
        for reads in producer_reads.values():
            all_reads |= set(reads)
        for ctor in spec.constructors:
            func = methods.get(ctor)
            if func is not None:
                all_reads |= set(_self_attr_reads(func))
        for attr, line in sorted(incorporated.items(), key=lambda kv: kv[1]):
            if attr in all_reads or attr in spec.allowed:
                continue
            diags.append(Diagnostic.of(
                "CKY002",
                f"cache-key component self.{attr} of {node.name} is never "
                f"read by any cached producer "
                f"({', '.join(spec.producers)}); dead key component?",
                file=rel_path, line=line,
            ))
    return diags
