"""Exact gate-level constructions of arithmetic functional units.

These are the reproduction's PULPino functional units (ADD/SUB/MUL/DIV
in Table III): real arithmetic circuits built gate-by-gate from the
synthetic library — ripple-carry adder, two's-complement subtractor,
carry-save array multiplier, and a non-restoring array divider — not
random graphs, so their critical paths have the long-chain structure
(carry/borrow ripple) the paper's path experiments exercise.

All builders use the 9-NAND full adder and NAND-based XOR/MUX, since
the library is NAND/NOR/INV/AOI-class (no transmission gates).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit


class CircuitBuilder:
    """Helper for composing circuits out of logic primitives.

    Each primitive method instantiates library gates and returns the
    output net name. Gate strengths default to x1; pass ``strength`` to
    upsize (e.g. along known-critical chains).
    """

    def __init__(self, name: str, seed: Optional[int] = None):
        self.circuit = Circuit(name)
        self._counter = 0
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def fresh(self, hint: str = "w") -> str:
        """A fresh unique net name."""
        self._counter += 1
        return f"{hint}_{self._counter}"

    def input(self, name: str) -> str:
        """Declare and return a primary input."""
        self.circuit.add_input(name)
        return name

    def inputs(self, prefix: str, width: int) -> List[str]:
        """Declare a bus of primary inputs ``prefix0 ... prefix{width-1}``."""
        return [self.input(f"{prefix}{i}") for i in range(width)]

    def output(self, net: str) -> str:
        """Mark a net as primary output."""
        self.circuit.add_output(net)
        return net

    def gate(self, cell: str, pins: Dict[str, str], hint: str = "w") -> str:
        """Instantiate ``cell`` and return its output net."""
        out = self.fresh(hint)
        self._counter += 1
        self.circuit.add_gate(f"g_{self._counter}", cell, pins, out)
        return out

    # -- primitives ----------------------------------------------------
    def inv(self, a: str, strength: int = 1) -> str:
        """NOT."""
        return self.gate(f"INVx{strength}", {"A": a}, "n")

    def buf(self, a: str, strength: int = 1) -> str:
        """Buffer."""
        return self.gate(f"BUFx{strength}", {"A": a}, "b")

    def nand2(self, a: str, b: str, strength: int = 1) -> str:
        """2-input NAND."""
        return self.gate(f"NAND2x{strength}", {"A": a, "B": b}, "nd")

    def nor2(self, a: str, b: str, strength: int = 1) -> str:
        """2-input NOR."""
        return self.gate(f"NOR2x{strength}", {"A": a, "B": b}, "nr")

    def and2(self, a: str, b: str, strength: int = 1) -> str:
        """2-input AND (NAND + INV)."""
        return self.inv(self.nand2(a, b, strength), strength)

    def or2(self, a: str, b: str, strength: int = 1) -> str:
        """2-input OR (NOR + INV)."""
        return self.inv(self.nor2(a, b, strength), strength)

    def xor2(self, a: str, b: str, strength: int = 1) -> str:
        """2-input XOR from four NANDs."""
        t1 = self.nand2(a, b, strength)
        return self.nand2(
            self.nand2(a, t1, strength), self.nand2(b, t1, strength), strength
        )

    def mux2(self, d0: str, d1: str, sel: str, strength: int = 1) -> str:
        """2:1 multiplexer (``sel=1`` selects ``d1``) from NANDs."""
        ns = self.inv(sel, strength)
        return self.nand2(
            self.nand2(d0, ns, strength), self.nand2(d1, sel, strength), strength
        )

    def full_adder(self, a: str, b: str, cin: str, strength: int = 1) -> Tuple[str, str]:
        """9-NAND full adder; returns ``(sum, carry_out)``."""
        t1 = self.nand2(a, b, strength)
        t2 = self.nand2(a, t1, strength)
        t3 = self.nand2(b, t1, strength)
        h = self.nand2(t2, t3, strength)  # a xor b
        t4 = self.nand2(h, cin, strength)
        t5 = self.nand2(h, t4, strength)
        t6 = self.nand2(cin, t4, strength)
        s = self.nand2(t5, t6, strength)
        cout = self.nand2(t4, t1, strength)
        return s, cout

    def half_adder(self, a: str, b: str, strength: int = 1) -> Tuple[str, str]:
        """Half adder; returns ``(sum, carry_out)``."""
        return self.xor2(a, b, strength), self.and2(a, b, strength)


# ----------------------------------------------------------------------
# Functional units
# ----------------------------------------------------------------------
def build_adder(width: int = 32, name: str = "pulpino_add") -> Circuit:
    """Ripple-carry adder: ``s = a + b + cin`` with carry out.

    The carry chain of ``width`` full adders is the archetypal long
    near-critical path of Table III's ADD unit.
    """
    if width < 1:
        raise NetlistError("adder width must be >= 1")
    cb = CircuitBuilder(name)
    a = cb.inputs("a", width)
    b = cb.inputs("b", width)
    carry = cb.input("cin")
    for i in range(width):
        s, carry = cb.full_adder(a[i], b[i], carry)
        cb.output(s)
    cb.output(carry)
    cb.circuit.validate()
    return cb.circuit


def build_subtractor(width: int = 32, name: str = "pulpino_sub") -> Circuit:
    """Two's-complement subtractor: ``d = a - b`` (= a + ~b + 1).

    The "+1" enters through the carry input, which is tied to the
    dedicated primary input ``one`` (the netlist format carries no
    constants; drive it high when simulating).
    """
    if width < 1:
        raise NetlistError("subtractor width must be >= 1")
    cb = CircuitBuilder(name)
    a = cb.inputs("a", width)
    b = cb.inputs("b", width)
    carry = cb.input("one")
    for i in range(width):
        nb = cb.inv(b[i])
        s, carry = cb.full_adder(a[i], nb, carry)
        cb.output(s)
    cb.output(carry)
    cb.circuit.validate()
    return cb.circuit


def build_multiplier(width: int = 16, name: str = "pulpino_mul") -> Circuit:
    """Carry-save array multiplier: ``p = a * b`` (unsigned).

    Partial products are ANDed, reduced row by row with full adders,
    and finished with a ripple adder on the final carry row — the
    classic array structure whose diagonal is the critical path.
    """
    if width < 2:
        raise NetlistError("multiplier width must be >= 2")
    cb = CircuitBuilder(name)
    a = cb.inputs("a", width)
    b = cb.inputs("b", width)
    zero = cb.input("zero")  # constant-0 rail as a primary input

    # pp[j][i] = a[i] & b[j]
    pp = [[cb.and2(a[i], b[j]) for i in range(width)] for j in range(width)]

    # Row 0 initializes the running sum.
    sums: List[str] = list(pp[0])  # weight i
    carries: List[str] = [zero] * width
    cb.output(sums[0])  # p0
    outputs = 1
    sums = sums[1:] + [zero]

    for j in range(1, width):
        new_sums: List[str] = []
        new_carries: List[str] = []
        for i in range(width):
            s, c = cb.full_adder(pp[j][i], sums[i], carries[i])
            new_sums.append(s)
            new_carries.append(c)
        cb.output(new_sums[0])
        outputs += 1
        sums = new_sums[1:] + [zero]
        carries = new_carries

    # Final ripple adder merges the leftover sum and carry vectors.
    carry = zero
    for i in range(width):
        s, carry = cb.full_adder(sums[i], carries[i], carry)
        cb.output(s)
        outputs += 1
    cb.output(carry)
    cb.circuit.validate()
    return cb.circuit


def build_divider(width: int = 16, name: str = "pulpino_div") -> Circuit:
    """Restoring array divider: ``q = a / d`` (unsigned, ``width`` bits each).

    Each row conditionally subtracts the divisor from the running
    remainder (borrow-ripple subtract + restore multiplexers); the
    quotient bit is the inverted final borrow. Rows of
    subtract-then-mux give the longest critical paths of the four
    functional units, matching DIV's standing in Table III.
    """
    if width < 2:
        raise NetlistError("divider width must be >= 2")
    cb = CircuitBuilder(name)
    a = cb.inputs("a", width)  # dividend, a[width-1] is MSB
    d = cb.inputs("d", width)  # divisor
    zero = cb.input("zero")

    # Remainder register (combinational rows), MSB-first processing.
    rem: List[str] = [zero] * width
    quotient: List[str] = []
    for step in range(width):
        # Shift in the next dividend bit (MSB first).
        rem = [a[width - 1 - step]] + rem[:-1]
        # Subtract divisor: rem - d via full adders with inverted d, carry-in 1.
        one = cb.inv(zero)
        carry = one
        diff: List[str] = []
        for i in range(width):
            nd = cb.inv(d[i])
            s, carry = cb.full_adder(rem[i], nd, carry)
            diff.append(s)
        no_borrow = carry  # 1 when rem >= d
        quotient.append(no_borrow)
        # Restore: keep the subtraction only if it did not borrow.
        rem = [cb.mux2(rem[i], diff[i], no_borrow) for i in range(width)]

    for q in reversed(quotient):
        cb.output(q)
    for r in rem:
        cb.output(r)
    cb.circuit.validate()
    return cb.circuit
