"""Gate-level netlist substrate.

Replaces the paper's Design-Compiler-mapped ISCAS85 / PULPino netlists:

* :mod:`repro.netlist.circuit` — circuits, gate instances, nets (with
  attached RC parasitics), topological utilities;
* :mod:`repro.netlist.verilog` — structural-Verilog subset I/O;
* :mod:`repro.netlist.generators` — exact gate-level constructions
  (ripple adder, subtractor, array multiplier, restoring divider) used
  as the PULPino functional units;
* :mod:`repro.netlist.benchmarks` — the ISCAS85-like synthetic circuit
  family with the paper's per-circuit size statistics, plus parasitic
  attachment.
"""

from repro.netlist.circuit import Circuit, GateInst, Net
from repro.netlist.verilog import read_verilog, write_verilog
from repro.netlist.generators import (
    build_adder,
    build_divider,
    build_multiplier,
    build_subtractor,
)
from repro.netlist.benchmarks import (
    ISCAS85_PROFILES,
    attach_parasitics,
    build_iscas85_like,
    build_pulpino_unit,
)
from repro.netlist.stats import CircuitStats, circuit_stats, compare_profiles

__all__ = [
    "Circuit",
    "GateInst",
    "Net",
    "read_verilog",
    "write_verilog",
    "build_adder",
    "build_subtractor",
    "build_multiplier",
    "build_divider",
    "ISCAS85_PROFILES",
    "build_iscas85_like",
    "build_pulpino_unit",
    "attach_parasitics",
    "CircuitStats",
    "circuit_stats",
    "compare_profiles",
]
