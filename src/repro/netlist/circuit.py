"""Gate-level circuit representation.

A :class:`Circuit` is a DAG of :class:`GateInst` instances connected by
:class:`Net` objects. Each net knows its driver (a primary input or a
gate output pin), its sinks (gate input pins and/or primary outputs),
and optionally carries extracted parasitics as an
:class:`~repro.interconnect.rctree.RCTree` with a sink → tree-leaf map —
the same information a mapped netlist plus SPEF would provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import NetlistError
from repro.interconnect.rctree import RCTree

#: Sentinel driver for primary-input nets.
PRIMARY_INPUT = ("<PI>", "")


@dataclass
class GateInst:
    """One placed gate.

    Attributes
    ----------
    name:
        Unique instance name.
    cell_name:
        Library cell, e.g. ``"NAND2x2"``.
    pins:
        Input pin name → net name.
    output_net:
        Net driven by the gate's output pin.
    """

    name: str
    cell_name: str
    pins: Dict[str, str]
    output_net: str


@dataclass
class Net:
    """One net: a driver, its sinks, and optional parasitics.

    Attributes
    ----------
    name:
        Net name.
    driver:
        ``(gate_name, pin)`` of the driving output, or
        :data:`PRIMARY_INPUT`.
    sinks:
        List of ``(gate_name, input_pin)`` loads; primary outputs appear
        as ``("<PO>", "")`` entries.
    tree:
        Extracted RC tree (None = ideal net).
    sink_leaf:
        Sink → tree leaf-node name (where that receiver pin taps the
        wire). Only meaningful when ``tree`` is set.
    """

    name: str
    driver: Tuple[str, str] = PRIMARY_INPUT
    sinks: List[Tuple[str, str]] = field(default_factory=list)
    tree: Optional[RCTree] = None
    sink_leaf: Dict[Tuple[str, str], str] = field(default_factory=dict)

    @property
    def is_primary_input(self) -> bool:
        """True when driven from outside the circuit."""
        return self.driver == PRIMARY_INPUT

    @property
    def fanout(self) -> int:
        """Number of sink pins."""
        return len(self.sinks)


#: Sentinel sink marking a primary output.
PRIMARY_OUTPUT = ("<PO>", "")


class Circuit:
    """A combinational gate-level circuit.

    Typical construction::

        ckt = Circuit("c17")
        ckt.add_input("N1"); ckt.add_input("N2")
        ckt.add_gate("g1", "NAND2x1", {"A": "N1", "B": "N2"}, "w1")
        ckt.add_output("w1")

    The class enforces single-driver nets and acyclicity (checked by
    :meth:`topological_gates`).
    """

    def __init__(self, name: str):
        self.name = name
        self.gates: Dict[str, GateInst] = {}
        self.nets: Dict[str, Net] = {}
        self.inputs: List[str] = []
        self.outputs: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _net(self, name: str) -> Net:
        if name not in self.nets:
            self.nets[name] = Net(name=name)
        return self.nets[name]

    def add_input(self, net_name: str) -> None:
        """Declare a primary-input net."""
        if net_name in self.inputs:
            raise NetlistError(f"duplicate primary input {net_name!r}")
        net = self._net(net_name)
        if not net.is_primary_input and net.driver != PRIMARY_INPUT:
            raise NetlistError(f"net {net_name!r} already has a driver")
        self.inputs.append(net_name)

    def add_output(self, net_name: str) -> None:
        """Declare a primary-output net (the net must exist by analysis time)."""
        if net_name in self.outputs:
            raise NetlistError(f"duplicate primary output {net_name!r}")
        self.outputs.append(net_name)
        self._net(net_name).sinks.append(PRIMARY_OUTPUT)

    def add_gate(
        self,
        name: str,
        cell_name: str,
        pins: Dict[str, str],
        output_net: str,
    ) -> GateInst:
        """Instantiate a gate.

        Parameters
        ----------
        pins:
            Input pin → net name.
        output_net:
            Net the output pin drives; must not already have a driver.
        """
        if name in self.gates:
            raise NetlistError(f"duplicate gate {name!r}")
        out = self._net(output_net)
        if not out.is_primary_input or output_net in self.inputs:
            if output_net in self.inputs:
                raise NetlistError(f"gate {name!r} drives primary input {output_net!r}")
            raise NetlistError(f"net {output_net!r} already driven by {out.driver}")
        gate = GateInst(name=name, cell_name=cell_name, pins=dict(pins), output_net=output_net)
        self.gates[name] = gate
        out.driver = (name, "Y")
        for pin, net_name in pins.items():
            self._net(net_name).sinks.append((name, pin))
        return gate

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural sanity: drivers exist, no floating gate inputs."""
        for net in self.nets.values():
            if net.is_primary_input and net.name not in self.inputs:
                raise NetlistError(f"net {net.name!r} has no driver and is not an input")
        for gate in self.gates.values():
            for pin, net_name in gate.pins.items():
                if net_name not in self.nets:
                    raise NetlistError(
                        f"gate {gate.name!r} pin {pin} references unknown net {net_name!r}"
                    )

    def topological_gates(self) -> List[GateInst]:
        """Gates in topological (input-to-output) order.

        Raises
        ------
        NetlistError
            If the circuit contains a combinational cycle.
        """
        indegree: Dict[str, int] = {}
        dependents: Dict[str, List[str]] = {g: [] for g in self.gates}
        for gate in self.gates.values():
            count = 0
            for net_name in gate.pins.values():
                net = self.nets[net_name]
                if not net.is_primary_input:
                    driver_gate = net.driver[0]
                    dependents[driver_gate].append(gate.name)
                    count += 1
            indegree[gate.name] = count
        frontier = [g for g, d in indegree.items() if d == 0]
        order: List[GateInst] = []
        while frontier:
            name = frontier.pop()
            order.append(self.gates[name])
            for dep in dependents[name]:
                indegree[dep] -= 1
                if indegree[dep] == 0:
                    frontier.append(dep)
        if len(order) != len(self.gates):
            remaining = sorted(set(self.gates) - {g.name for g in order})
            raise NetlistError(f"combinational cycle involving {remaining[:5]}")
        return order

    def logic_depth(self) -> int:
        """Maximum number of gates on any input-to-output path."""
        depth: Dict[str, int] = {}
        for gate in self.topological_gates():
            best = 0
            for net_name in gate.pins.values():
                net = self.nets[net_name]
                if not net.is_primary_input:
                    best = max(best, depth[net.driver[0]])
            depth[gate.name] = best + 1
        return max(depth.values(), default=0)

    @property
    def n_cells(self) -> int:
        """Number of gate instances."""
        return len(self.gates)

    @property
    def n_nets(self) -> int:
        """Number of nets."""
        return len(self.nets)

    def cell_histogram(self) -> Dict[str, int]:
        """Cell name → instance count."""
        hist: Dict[str, int] = {}
        for gate in self.gates.values():
            hist[gate.cell_name] = hist.get(gate.cell_name, 0) + 1
        return dict(sorted(hist.items()))

    def evaluate(self, input_values: Dict[str, int], library) -> Dict[str, int]:
        """Logic-simulate the circuit for one input vector.

        Parameters
        ----------
        input_values:
            Primary-input net → 0/1.
        library:
            A :class:`~repro.cells.library.CellLibrary` supplying each
            cell's boolean function.

        Returns
        -------
        dict
            Net name → logic value for every net.
        """
        values = dict(input_values)
        missing = [n for n in self.inputs if n not in values]
        if missing:
            raise NetlistError(f"missing input values for {missing[:5]}")
        for gate in self.topological_gates():
            cell = library.get(gate.cell_name)
            pin_values = {pin: values[net] for pin, net in gate.pins.items()}
            values[gate.output_net] = cell.logic(pin_values)
        return values

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, cells={self.n_cells}, nets={self.n_nets}, "
            f"inputs={len(self.inputs)}, outputs={len(self.outputs)})"
        )
