"""Structural-Verilog subset reader/writer.

Supports the flat, mapped netlist style a synthesis tool emits:

.. code-block:: verilog

    module c17 (N1, N2, N3, N6, N7, N22, N23);
      input N1, N2, N3, N6, N7;
      output N22, N23;
      wire w10, w11;
      NAND2x1 g10 (.A(N1), .B(N3), .Y(w10));
      ...
    endmodule

Restrictions (checked): named port connections only, single-bit nets,
one module per file, no assigns/parameters/behavioural constructs.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit

_IDENT = r"[A-Za-z_][A-Za-z0-9_\[\]\.]*"


def write_verilog(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write a circuit as a flat structural module."""
    path = Path(path)
    ports = [*circuit.inputs, *circuit.outputs]
    wires = [
        n
        for n in circuit.nets
        if n not in circuit.inputs and n not in circuit.outputs
    ]
    lines = [f"module {circuit.name} ({', '.join(ports)});"]
    for name in circuit.inputs:
        lines.append(f"  input {name};")
    for name in circuit.outputs:
        lines.append(f"  output {name};")
    for name in wires:
        lines.append(f"  wire {name};")
    for gate in circuit.gates.values():
        conns = [f".{pin}({net})" for pin, net in gate.pins.items()]
        conns.append(f".Y({gate.output_net})")
        lines.append(f"  {gate.cell_name} {gate.name} ({', '.join(conns)});")
    lines.append("endmodule")
    lines.append("")
    path.write_text("\n".join(lines))


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return text


def read_verilog(path: Union[str, Path]) -> Circuit:
    """Parse a module written in the supported subset back to a :class:`Circuit`."""
    path = Path(path)
    text = _strip_comments(path.read_text())
    statements = [s.strip() for s in text.replace("\n", " ").split(";")]

    circuit: "Circuit | None" = None
    pending_outputs: List[str] = []
    for stmt in statements:
        if not stmt or stmt == "endmodule":
            continue
        m = re.match(rf"module\s+({_IDENT})\s*\((.*)\)\s*$", stmt)
        if m:
            if circuit is not None:
                raise NetlistError(f"{path}: multiple modules are not supported")
            circuit = Circuit(m.group(1))
            continue
        if circuit is None:
            raise NetlistError(f"{path}: statement before module header: {stmt[:40]!r}")
        m = re.match(r"(input|output|wire)\s+(.*)$", stmt)
        if m:
            kind = m.group(1)
            names = [n.strip() for n in m.group(2).split(",") if n.strip()]
            for name in names:
                if not re.fullmatch(_IDENT, name):
                    raise NetlistError(f"{path}: unsupported net declaration {name!r}")
                if kind == "input":
                    circuit.add_input(name)
                elif kind == "output":
                    pending_outputs.append(name)
                # wires materialize lazily through gate connections
            continue
        m = re.match(rf"({_IDENT})\s+({_IDENT})\s*\((.*)\)\s*$", stmt)
        if m:
            cell_name, inst_name, conn_text = m.groups()
            pins: Dict[str, str] = {}
            for conn in re.finditer(rf"\.({_IDENT})\s*\(\s*({_IDENT})\s*\)", conn_text):
                pins[conn.group(1)] = conn.group(2)
            if not pins:
                raise NetlistError(
                    f"{path}: {inst_name}: only named port connections are supported"
                )
            if "Y" not in pins:
                raise NetlistError(f"{path}: {inst_name}: no output (.Y) connection")
            output_net = pins.pop("Y")
            circuit.add_gate(inst_name, cell_name, pins, output_net)
            continue
        raise NetlistError(f"{path}: unsupported statement: {stmt[:60]!r}")
    if circuit is None:
        raise NetlistError(f"{path}: no module found")
    for name in pending_outputs:
        circuit.add_output(name)
    circuit.validate()
    return circuit
