"""Circuit statistics: fanout/depth/wirelength distributions.

Small analysis helpers over :class:`~repro.netlist.circuit.Circuit` —
the numbers a benchmark table or a paper's "experimental setup" section
quotes (cell mix, fanout histogram, logic-depth distribution, total
wire R/C). Pure functions, no simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.netlist.circuit import PRIMARY_OUTPUT, Circuit


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics of one circuit.

    Attributes
    ----------
    name / n_cells / n_nets / n_inputs / n_outputs:
        Size counters.
    depth:
        Maximum logic depth (gates on the longest path).
    fanout_histogram:
        Fanout value → number of nets.
    cell_histogram:
        Cell name → instance count.
    type_histogram:
        Cell *type* (strength-stripped) → instance count.
    total_wire_resistance / total_wire_cap:
        Sums over all attached RC trees (0 when no parasitics).
    mean_depth:
        Average over gates of their depth level.
    """

    name: str
    n_cells: int
    n_nets: int
    n_inputs: int
    n_outputs: int
    depth: int
    mean_depth: float
    fanout_histogram: Dict[int, int]
    cell_histogram: Dict[str, int]
    type_histogram: Dict[str, int]
    total_wire_resistance: float
    total_wire_cap: float

    def format(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"{self.name}: {self.n_cells} cells, {self.n_nets} nets, "
            f"{self.n_inputs} inputs, {self.n_outputs} outputs",
            f"  logic depth {self.depth} (mean {self.mean_depth:.1f})",
            f"  wire totals: {self.total_wire_resistance / 1e3:.1f} kΩ, "
            f"{self.total_wire_cap * 1e15:.1f} fF",
            "  cell mix: "
            + ", ".join(f"{t}:{n}" for t, n in sorted(self.type_histogram.items())),
            "  fanout histogram: "
            + ", ".join(
                f"{fo}->{n}" for fo, n in sorted(self.fanout_histogram.items())[:8]
            ),
        ]
        return "\n".join(lines)


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute :class:`CircuitStats` for a circuit (parasitics optional)."""
    depth: Dict[str, int] = {}
    for gate in circuit.topological_gates():
        best = 0
        for net_name in gate.pins.values():
            net = circuit.nets[net_name]
            if not net.is_primary_input:
                best = max(best, depth[net.driver[0]])
        depth[gate.name] = best + 1

    fanout_hist: Dict[int, int] = {}
    total_r = 0.0
    total_c = 0.0
    for net in circuit.nets.values():
        gate_fanout = sum(1 for s in net.sinks if s != PRIMARY_OUTPUT)
        fanout_hist[gate_fanout] = fanout_hist.get(gate_fanout, 0) + 1
        if net.tree is not None:
            total_r += net.tree.total_resistance()
            total_c += net.tree.total_cap()

    cell_hist = circuit.cell_histogram()
    type_hist: Dict[str, int] = {}
    for name, count in cell_hist.items():
        type_name = name.split("x")[0]
        type_hist[type_name] = type_hist.get(type_name, 0) + count

    depths = list(depth.values())
    return CircuitStats(
        name=circuit.name,
        n_cells=circuit.n_cells,
        n_nets=circuit.n_nets,
        n_inputs=len(circuit.inputs),
        n_outputs=len(circuit.outputs),
        depth=max(depths, default=0),
        mean_depth=float(np.mean(depths)) if depths else 0.0,
        fanout_histogram=fanout_hist,
        cell_histogram=cell_hist,
        type_histogram=type_hist,
        total_wire_resistance=total_r,
        total_wire_cap=total_c,
    )


def compare_profiles(circuits: List[Circuit]) -> str:
    """A compact table comparing several circuits' statistics."""
    rows = [circuit_stats(c) for c in circuits]
    lines = [
        f"{'circuit':<14} {'cells':>7} {'nets':>7} {'PIs':>5} {'POs':>5} "
        f"{'depth':>6} {'wireC(fF)':>10}"
    ]
    for s in rows:
        lines.append(
            f"{s.name:<14} {s.n_cells:>7} {s.n_nets:>7} {s.n_inputs:>5} "
            f"{s.n_outputs:>5} {s.depth:>6} {s.total_wire_cap * 1e15:>10.1f}"
        )
    return "\n".join(lines)
