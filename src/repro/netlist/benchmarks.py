"""Benchmark circuits: ISCAS85-like synthetics and PULPino functional units.

The paper evaluates on ISCAS85 netlists mapped by Design Compiler to a
TSMC 28 nm library — netlists we cannot redistribute or regenerate.
:func:`build_iscas85_like` substitutes deterministic synthetic circuits
matching the *published statistics* of each benchmark (cell and net
counts from Table III, plausible logic depths, a standard-cell mix with
realistic strength distribution, locality-biased wiring). The paper's
path experiments only consume critical paths through mapped gates plus
parasitics, all of which these circuits provide.

:func:`attach_parasitics` plays the role of IC Compiler + SPEF: every
net gets a seeded random RC tree scaled by its fanout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import NetlistError
from repro.interconnect.generate import NetGenerator
from repro.netlist.circuit import PRIMARY_OUTPUT, Circuit
from repro.netlist.generators import (
    build_adder,
    build_divider,
    build_multiplier,
    build_subtractor,
)
from repro.units import UM
from repro.variation.parameters import Technology


@dataclass(frozen=True)
class BenchmarkProfile:
    """Size statistics of one synthetic ISCAS85-like circuit.

    ``n_cells`` and ``n_nets`` follow the paper's Table III; depth and
    output counts are chosen to resemble the original benchmarks.
    """

    name: str
    n_cells: int
    n_nets: int
    n_outputs: int
    depth: int
    seed: int

    @property
    def n_inputs(self) -> int:
        """Primary inputs = nets − cells (one output net per cell)."""
        return self.n_nets - self.n_cells


#: Table III circuit statistics (cells/nets) with plausible depths.
ISCAS85_PROFILES: Dict[str, BenchmarkProfile] = {
    p.name: p
    for p in (
        BenchmarkProfile("c432", 655, 734, 7, 26, 432),
        BenchmarkProfile("c1355", 977, 1091, 32, 24, 1355),
        BenchmarkProfile("c1908", 1093, 1184, 25, 32, 1908),
        BenchmarkProfile("c2670", 1810, 2415, 140, 28, 2670),
        BenchmarkProfile("c3540", 2168, 2290, 22, 40, 3540),
        BenchmarkProfile("c5315", 5275, 5371, 123, 42, 5315),
        BenchmarkProfile("c6288", 3246, 3725, 32, 89, 6288),
        BenchmarkProfile("c7552", 4041, 4536, 108, 38, 7552),
    )
}

#: Cell-type mix of the synthetic mapper (weights loosely follow the
#: NAND/NOR-dominated profile of mapped ISCAS85 logic).
_TYPE_WEIGHTS: "list[tuple[str, float]]" = [
    ("NAND2", 0.30),
    ("NOR2", 0.18),
    ("INV", 0.20),
    ("AOI21", 0.10),
    ("OAI21", 0.08),
    ("NAND3", 0.06),
    ("NOR3", 0.05),
    ("BUF", 0.03),
]

_STRENGTH_WEIGHTS: "list[tuple[int, float]]" = [(1, 0.5), (2, 0.3), (4, 0.15), (8, 0.05)]

_N_INPUTS = {"INV": 1, "BUF": 1, "NAND2": 2, "NOR2": 2, "AOI21": 3, "OAI21": 3,
             "NAND3": 3, "NOR3": 3}
_PINS = {1: ("A",), 2: ("A", "B"), 3: ("A", "B", "C")}


def build_iscas85_like(
    name: str,
    profile: Optional[BenchmarkProfile] = None,
    type_names: Optional[Tuple[str, ...]] = None,
) -> Circuit:
    """Build the synthetic stand-in for an ISCAS85 benchmark.

    Parameters
    ----------
    name:
        One of :data:`ISCAS85_PROFILES` (e.g. ``"c432"``), unless
        ``profile`` is supplied explicitly.
    type_names:
        Restrict the cell mix to these types (weights renormalized);
        useful when only a library subset is characterized.

    Notes
    -----
    The construction is deterministic per profile seed: gates are
    distributed over ``depth`` levels; each gate draws its inputs from
    earlier levels with a geometric locality bias (most connections are
    short, a few are long — as placed netlists show), which fixes the
    logic depth and produces ISCAS-like fanout distributions.
    """
    if profile is None:
        if name not in ISCAS85_PROFILES:
            raise NetlistError(
                f"unknown benchmark {name!r}; known: {sorted(ISCAS85_PROFILES)}"
            )
        profile = ISCAS85_PROFILES[name]
    rng = np.random.default_rng(profile.seed)
    circuit = Circuit(name)

    levels: List[List[str]] = [[]]
    for i in range(profile.n_inputs):
        net = f"pi{i}"
        circuit.add_input(net)
        levels[0].append(net)

    # Split cells across levels: every level gets at least one gate; the
    # remainder is spread with mild randomness.
    depth = max(2, profile.depth)
    base = profile.n_cells // depth
    sizes = np.full(depth, base)
    sizes[: profile.n_cells - base * depth] += 1
    perm = rng.permutation(depth)
    sizes = sizes[perm]

    allowed = set(type_names) if type_names else None
    mix = [(t, w) for t, w in _TYPE_WEIGHTS if allowed is None or t in allowed]
    if not mix:
        raise NetlistError(f"no usable cell types among {type_names}")
    type_names = [t for t, _ in mix]
    type_p = np.array([w for _, w in mix])
    type_p /= type_p.sum()
    str_values = [s for s, _ in _STRENGTH_WEIGHTS]
    str_p = np.array([w for _, w in _STRENGTH_WEIGHTS])
    str_p /= str_p.sum()

    gate_id = 0
    for level, n_gates in enumerate(sizes, start=1):
        new_nets: List[str] = []
        for _ in range(int(n_gates)):
            type_name = type_names[int(rng.choice(len(type_names), p=type_p))]
            strength = str_values[int(rng.choice(len(str_values), p=str_p))]
            n_in = _N_INPUTS[type_name]
            pins: Dict[str, str] = {}
            pin_names = _PINS[n_in]
            # First input comes from the immediately preceding level to
            # guarantee the level (and hence depth) structure.
            pins[pin_names[0]] = _pick_net(rng, levels, level - 1)
            for pin in pin_names[1:]:
                src_level = _biased_level(rng, level)
                pins[pin] = _pick_net(rng, levels, src_level)
            out = f"n{level}_{gate_id}"
            circuit.add_gate(f"u{gate_id}", f"{type_name}x{strength}", pins, out)
            gate_id += 1
            new_nets.append(out)
        levels.append(new_nets)

    # Primary outputs: every sink-less net, topped up to the profile count
    # with deep nets.
    dangling = [n for n, net in circuit.nets.items() if not net.sinks]
    for net in dangling:
        circuit.add_output(net)
    circuit.validate()
    return circuit


def _biased_level(rng: np.random.Generator, level: int) -> int:
    """Pick a source level < ``level`` with geometric locality bias."""
    back = int(rng.geometric(0.55))
    return max(0, level - back)


def _pick_net(rng: np.random.Generator, levels: List[List[str]], level: int) -> str:
    while not levels[level]:
        level -= 1
    nets = levels[level]
    return nets[int(rng.integers(0, len(nets)))]


def build_pulpino_unit(unit: str, width: Optional[int] = None) -> Circuit:
    """Build a PULPino functional unit by name.

    Parameters
    ----------
    unit:
        ``"ADD"``, ``"SUB"``, ``"MUL"`` or ``"DIV"``.
    width:
        Operand width; defaults to 32 for ADD/SUB and 16 for MUL/DIV
        (the array units grow quadratically).
    """
    unit = unit.upper()
    if unit == "ADD":
        return build_adder(width or 32, name="pulpino_add")
    if unit == "SUB":
        return build_subtractor(width or 32, name="pulpino_sub")
    if unit == "MUL":
        return build_multiplier(width or 16, name="pulpino_mul")
    if unit == "DIV":
        return build_divider(width or 16, name="pulpino_div")
    raise NetlistError(f"unknown PULPino unit {unit!r} (ADD/SUB/MUL/DIV)")


def attach_parasitics(
    circuit: Circuit,
    tech: Technology,
    seed: int = 0,
    base_length: float = 12.0 * UM,
    length_per_fanout: float = 8.0 * UM,
) -> None:
    """Attach a seeded random RC tree to every net of ``circuit`` in place.

    Net length scales with fanout (placed designs route higher-fanout
    nets farther); each sink pin is assigned a tap point (tree leaf).
    Primary-input nets get parasitics too — the launch wire from the
    pad/register.
    """
    gen = NetGenerator(tech, seed=seed)
    rng = np.random.default_rng(seed + 1)
    for net in circuit.nets.values():
        fanout = max(1, net.fanout)
        mean_len = base_length + length_per_fanout * (fanout - 1)
        tree = gen.random_net(mean_length=mean_len, max_branches=min(2, fanout - 1),
                              name=net.name)
        net.tree = tree
        leaves = tree.leaves()
        net.sink_leaf = {}
        for k, sink in enumerate(net.sinks):
            if sink == PRIMARY_OUTPUT:
                continue
            net.sink_leaf[sink] = leaves[k % len(leaves)]
