"""Unit conventions and helpers.

The whole library uses SI units internally:

========  ========
quantity  unit
========  ========
time      seconds
voltage   volts
current   amperes
charge    coulombs
R         ohms
C         farads
length    meters
========  ========

The paper quotes picoseconds and femtofarads; these helpers keep call
sites readable (``10 * PS`` instead of ``1e-11``) and make intent explicit
when printing results back in paper units.
"""

from __future__ import annotations

# This module *defines* the unit constants, so bare magnitudes are the point.
# repro-lint: disable-file=UNIT001

# Time
S = 1.0
MS = 1e-3
US = 1e-6
NS = 1e-9
PS = 1e-12
FS = 1e-15

# Capacitance
F = 1.0
PF = 1e-12
FF = 1e-15
AF = 1e-18

# Resistance
OHM = 1.0
KOHM = 1e3
MEGOHM = 1e6

# Length
M = 1.0
UM = 1e-6
NM = 1e-9

# Voltage / current
V = 1.0
MV = 1e-3
A = 1.0
MA = 1e-3
UA = 1e-6
NA = 1e-9

# Boltzmann constant over electron charge (V/K); thermal voltage = KB_Q * T.
KB_Q = 8.617333262e-5


def thermal_voltage(temperature_c: float = 25.0) -> float:
    """Return the thermal voltage ``kT/q`` in volts at ``temperature_c`` Celsius."""
    return KB_Q * (temperature_c + 273.15)


def to_ps(seconds: float) -> float:
    """Convert seconds to picoseconds (for reporting in paper units)."""
    return seconds / PS


def to_ff(farads: float) -> float:
    """Convert farads to femtofarads (for reporting in paper units)."""
    return farads / FF
