"""Reduced-order interconnect models (π-model, effective capacitance).

The paper's related work surveys model-order reduction; two classical
reductions are implemented as library extensions:

* :func:`pi_model` — the O'Brien/Savarino three-element π load that
  matches the first three moments of the tree's driving-point
  admittance. This is what a gate-level timer presents to a driver
  instead of the full tree.
* :func:`effective_capacitance` — a shielding-aware single-cap load
  derived from the π model and the driver's transition time: far
  capacitance hidden behind wire resistance counts fractionally.

Both come with exactness guarantees on degenerate trees (tested):
a purely capacitive net reduces to itself, and ``C_eff`` approaches
``C_total`` as the transition slows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import InterconnectError
from repro.interconnect.rctree import RCTree


@dataclass(frozen=True)
class PiModel:
    """The π-equivalent of an RC tree seen from its root.

    ``c_near`` farads at the driver pin, ``resistance`` ohms to
    ``c_far`` farads. Matches the driving-point admittance moments
    ``y1 = -(C1)``, ``y2``, ``y3`` of the original tree.
    """

    c_near: float
    resistance: float
    c_far: float

    @property
    def total_cap(self) -> float:
        """Total capacitance of the reduced load."""
        return self.c_near + self.c_far


def _admittance_moments(tree: RCTree) -> "tuple[float, float, float]":
    """First three moments of the driving-point admittance at the root.

    Standard downstream recursion: for node k with children j,
    ``y1_k = C_k + sum_j y1_j``,
    ``y2_k = sum_j (y2_j - R_j * y1_j^2)``,
    ``y3_k = sum_j (y3_j - 2 R_j y1_j y2_j + R_j^2 y1_j^3)``.
    """
    y1: Dict[str, float] = {}
    y2: Dict[str, float] = {}
    y3: Dict[str, float] = {}
    order = list(tree.topological())
    for name in reversed(order):
        node = tree.nodes[name]
        a1, a2, a3 = node.cap, 0.0, 0.0
        for child in tree.children(name):
            r = tree.nodes[child].resistance
            b1, b2, b3 = y1[child], y2[child], y3[child]
            a1 += b1
            a2 += b2 - r * b1 * b1
            a3 += b3 - 2.0 * r * b1 * b2 + r * r * b1**3
        y1[name], y2[name], y3[name] = a1, a2, a3
    root = tree.root
    return y1[root], y2[root], y3[root]


def pi_model(tree: RCTree) -> PiModel:
    """O'Brien/Savarino π reduction of an RC tree.

    Matching ``y1, y2, y3`` gives ``c_far = y2^2 / y3``,
    ``resistance = -y3^2 / y2^3`` and ``c_near = y1 - c_far``. For a
    purely capacitive tree (``y2 = y3 = 0``) the π degenerates to a
    single capacitor.
    """
    y1, y2, y3 = _admittance_moments(tree)
    if y1 <= 0:
        raise InterconnectError("tree has no capacitance to reduce")
    # Degenerate or numerically underflowing higher moments (purely
    # capacitive nets, vanishing caps): lumped load.
    if y2 == 0.0 or y3 == 0.0 or y2 * y2 * y2 == 0.0:
        return PiModel(c_near=y1, resistance=0.0, c_far=0.0)
    c_far = y2 * y2 / y3
    resistance = -(y3 * y3) / (y2**3)
    c_near = y1 - c_far
    if (
        not np.isfinite(resistance)
        or not np.isfinite(c_far)
        or resistance < 0
        or c_far < 0
    ):
        # Pathological moment signs (extreme topologies / underflow):
        # fall back to the lumped load.
        return PiModel(c_near=y1, resistance=0.0, c_far=0.0)
    return PiModel(c_near=max(c_near, 0.0), resistance=resistance, c_far=c_far)


def effective_capacitance(tree: RCTree, transition_time: float) -> float:
    """Shielding-aware single-capacitor load for a driver transition.

    The far capacitance behind the π resistance charges with time
    constant ``tau = R * C_far``; during a transition of duration ``T``
    only a fraction ``w = 1 - tau/T * (1 - exp(-T/tau))`` of its charge
    is drawn from the driver. ``C_eff = C_near + w * C_far``.

    Bounds (tested): ``C_near <= C_eff <= C_total``; ``C_eff → C_total``
    as ``T → ∞`` (slow edges see everything) and ``→ C_near`` as
    ``T → 0``.
    """
    if transition_time <= 0:
        raise InterconnectError("transition_time must be positive")
    pi = pi_model(tree)
    if pi.c_far == 0.0 or pi.resistance == 0.0:
        return pi.total_cap
    tau = pi.resistance * pi.c_far
    ratio = tau / transition_time
    w = 1.0 - ratio * (1.0 - np.exp(-1.0 / ratio))
    return pi.c_near + w * pi.c_far
