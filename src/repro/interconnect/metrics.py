"""Analytic interconnect delay metrics.

* **Elmore** (Eq. 4 of the paper): the first moment of the impulse
  response from root to a sink, ``sum_k R_common(sink,k) * C_k``. The
  paper uses it directly as the mean wire delay ``mu_w`` — which is
  exact in the slow-ramp limit, since an LTI network delays a linear
  ramp by exactly its first moment.
* **Second moment** ``m2`` and the **D2M** metric
  (``ln 2 * m1^2 / sqrt(m2)``) as a tighter classical comparison point.

Both are computed for all nodes in two linear tree traversals.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.errors import InterconnectError
from repro.interconnect.rctree import RCTree


def _weighted_elmore(tree: RCTree, weights: Dict[str, float]) -> Dict[str, float]:
    """Generic Elmore recursion with arbitrary per-node "charge" weights.

    With ``weights = caps`` this yields the first moment; feeding
    ``caps * m1`` back in yields the second-moment sum (standard
    path-tracing moment computation).
    """
    order = list(tree.topological())
    down = {name: weights.get(name, 0.0) for name in order}
    for name in reversed(order):
        parent = tree.nodes[name].parent
        if parent is not None:
            down[parent] += down[name]
    out = {tree.root: 0.0}
    for name in order:
        node = tree.nodes[name]
        if node.parent is None:
            continue
        out[name] = out[node.parent] + node.resistance * down[name]
    return out


def elmore_delay(tree: RCTree, sink: str = "") -> "float | Dict[str, float]":
    """Elmore delay from the root.

    Parameters
    ----------
    sink:
        Node to report; when empty, a dict for *all* nodes is returned.
    """
    caps = {name: node.cap for name, node in tree.nodes.items()}
    all_delays = _weighted_elmore(tree, caps)
    if not sink:
        return all_delays
    if sink not in all_delays:
        raise InterconnectError(f"no RC node {sink!r}")
    return all_delays[sink]


def elmore_delays(tree: RCTree) -> Dict[str, float]:
    """Elmore delay from the root to *every* node, via flat index arrays.

    Numerically identical to ``elmore_delay(tree)`` (same traversal
    order, same float accumulation sequence) but runs on the arrays of
    :meth:`~repro.interconnect.rctree.RCTree.flatten` instead of name
    dictionaries — the form the compiled STA engine uses to precompute
    per-sink wire delays once per design instead of once per query.
    """
    names, parent, res, cap = tree.flatten()
    n = len(names)
    down = list(cap)
    for i in range(n - 1, 0, -1):
        down[parent[i]] += down[i]
    out = [0.0] * n
    for i in range(1, n):
        out[i] = out[parent[i]] + res[i] * down[i]
    return dict(zip(names, out))


def impulse_moments(tree: RCTree, sink: str) -> "tuple[float, float]":
    """First and second impulse-response moments ``(m1, m2)`` at ``sink``.

    ``m1`` is the Elmore delay; ``m2 = sum_k R_common C_k m1_k``.
    (These are the moment *sums*; in transfer-function terms
    ``H(s) = 1 - m1 s + m2 s^2 - ...``.)
    """
    caps = {name: node.cap for name, node in tree.nodes.items()}
    m1 = _weighted_elmore(tree, caps)
    weighted = {name: caps[name] * m1[name] for name in caps}
    m2 = _weighted_elmore(tree, weighted)
    if sink not in m1:
        raise InterconnectError(f"no RC node {sink!r}")
    return m1[sink], m2[sink]


def d2m_delay(tree: RCTree, sink: str) -> float:
    """The D2M ("delay with two moments") metric ``ln2 * m1^2 / sqrt(m2)``.

    D2M tightens Elmore's pessimism on far sinks of resistive nets; it
    appears in the paper's related work as the classical refinement.
    """
    m1, m2 = impulse_moments(tree, sink)
    if m2 <= 0.0:
        return 0.0
    return math.log(2.0) * m1 * m1 / math.sqrt(m2)
