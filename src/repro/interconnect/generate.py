"""Synthetic parasitic generation.

The paper's RC values are "randomly chosen from the parasitic files" of
a placed-and-routed design. :class:`NetGenerator` plays that role: it
draws seeded random net topologies (chains with optional branches, as a
router would produce for low-fanout standard-cell nets) with per-unit-
length R/C taken from the technology constants, segmented finely enough
that distributed-RC behaviour (resistive shielding) is visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import InterconnectError
from repro.interconnect.rctree import RCTree
from repro.units import UM
from repro.variation.parameters import Technology


@dataclass
class NetGenerator:
    """Seeded random generator of routed-net RC trees.

    Parameters
    ----------
    tech:
        Supplies nominal Ω/m and F/m.
    seed:
        RNG seed; the same seed reproduces the same sequence of nets.
    segment_length:
        Routing is discretized into segments of this length (meters);
        shorter segments model distributed RC more finely at higher
        simulation cost.
    """

    tech: Technology
    seed: int = 0
    segment_length: float = 5.0 * UM
    max_segments: int = 10

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def chain(self, length: float, name: str = "net") -> RCTree:
        """A point-to-point route of the given total length (meters).

        Long routes are discretized into at most ``max_segments``
        sections: enough to show distributed-RC shielding while keeping
        the Monte-Carlo node count (solver cost is cubic in nodes) flat.
        """
        if length <= 0:
            raise InterconnectError("net length must be positive")
        n_seg = max(1, min(self.max_segments, int(round(length / self.segment_length))))
        seg_len = length / n_seg
        r = self.tech.wire_r_per_m * seg_len
        c = self.tech.wire_c_per_m * seg_len
        tree = RCTree("root")
        parent = "root"
        for k in range(n_seg):
            node = f"{name}_{k + 1}"
            tree.add_segment(node, parent, r, c)
            parent = node
        return tree

    def random_net(
        self,
        mean_length: float = 40.0 * UM,
        max_branches: int = 2,
        name: str = "net",
    ) -> RCTree:
        """A random routed net: a trunk with 0–``max_branches`` side branches.

        Trunk length is log-normal around ``mean_length`` (routed net
        lengths are heavy-tailed); branch points and branch lengths are
        uniform. All sinks are leaves of the returned tree.
        """
        trunk_len = float(
            np.clip(
                self._rng.lognormal(np.log(mean_length), 0.5),
                5.0 * UM,
                20 * mean_length,
            )
        )
        tree = self.chain(trunk_len, name=f"{name}_t")
        trunk_nodes = [n for n in tree.topological() if n != tree.root]
        n_branches = int(self._rng.integers(0, max_branches + 1))
        for b in range(n_branches):
            if not trunk_nodes:
                break
            attach = trunk_nodes[int(self._rng.integers(0, len(trunk_nodes)))]
            branch_len = float(self._rng.uniform(0.25, 0.75)) * trunk_len
            n_seg = max(
                1, min(self.max_segments, int(round(branch_len / self.segment_length)))
            )
            seg_len = branch_len / n_seg
            r = self.tech.wire_r_per_m * seg_len
            c = self.tech.wire_c_per_m * seg_len
            parent = attach
            for k in range(n_seg):
                node = f"{name}_b{b}_{k + 1}"
                tree.add_segment(node, parent, r, c)
                parent = node
        return tree

    def paper_example_net(self) -> RCTree:
        """A fixed medium-length net for the Fig. 7 style single-net studies."""
        return self.chain(60.0 * UM, name="fig7")
