"""SPEF subset reader and writer.

The flow consumes the same information IC Compiler would have emitted
in a Standard Parasitic Exchange Format file: per-net ``*D_NET`` blocks
with ``*CAP`` (grounded caps) and ``*RES`` (segment resistors) sections.
This module round-trips that subset — enough structure that real SPEF
habits (header, units, connectivity section) carry over, without
implementing the full IEEE 1481 grammar.

Limitations (documented, enforced):

* only grounded caps (no coupling ``*CAP`` pairs);
* resistor sections must form a tree rooted at the net's driver node;
* name maps (``*NAME_MAP``) are not supported.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import InterconnectError
from repro.interconnect.rctree import RCTree
from repro.units import FF, OHM

_HEADER = """*SPEF "IEEE 1481-1998"
*DESIGN "{design}"
*VENDOR "repro"
*PROGRAM "repro.interconnect.spef"
*T_UNIT 1 PS
*C_UNIT 1 FF
*R_UNIT 1 OHM
"""

# Units used on disk (SPEF-conventional) vs the SI used in memory.
_R_UNIT = OHM
_C_UNIT = FF


def write_spef(
    nets: Dict[str, RCTree],
    path: Union[str, Path],
    design: str = "repro_design",
) -> None:
    """Write nets as ``*D_NET`` blocks.

    Node naming: the tree's own node names are written verbatim; the
    root is also declared as the net's driver connection.
    """
    path = Path(path)
    lines = [_HEADER.format(design=design)]
    for net_name, tree in nets.items():
        lines.append(f'*D_NET {net_name} {tree.total_cap() / _C_UNIT:.6f}')
        lines.append("*CONN")
        lines.append(f"*I {tree.root} O")
        for leaf in tree.leaves():
            if leaf != tree.root:
                lines.append(f"*I {leaf} I")
        lines.append("*CAP")
        k = 1
        for name, node in tree.nodes.items():
            if node.cap > 0:
                lines.append(f"{k} {name} {node.cap / _C_UNIT:.6f}")
                k += 1
        lines.append("*RES")
        k = 1
        for name in tree.topological():
            node = tree.nodes[name]
            if node.parent is not None:
                lines.append(f"{k} {node.parent} {name} {node.resistance / _R_UNIT:.6f}")
                k += 1
        lines.append("*END")
        lines.append("")
    path.write_text("\n".join(lines))


def _parse_float(token: str, what: str, net: str) -> float:
    """Parse one numeric token, naming the net on failure."""
    try:
        return float(token)
    except ValueError:
        raise InterconnectError(
            f"net {net}: non-numeric {what} value {token!r}"
        ) from None


def parse_spef_records(path: Union[str, Path]) -> List[dict]:
    """Tokenize ``*D_NET`` blocks into raw records (shared with the linter).

    Each record carries ``name``, ``total`` (the header's cap total in
    farads, or ``None`` when absent), ``caps`` (node → farads), ``res``
    (node, node, ohms triples) and ``driver``. Grammar violations —
    truncated sections, coupling caps, duplicate cap entries,
    non-numeric values, unterminated nets — raise
    :class:`~repro.errors.InterconnectError` with the offending net
    named.
    """
    path = Path(path)
    records: List[dict] = []
    current: "dict | None" = None
    section = ""
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("//"):
            continue
        if line.startswith("*D_NET"):
            if current is not None:
                raise InterconnectError(f"unterminated *D_NET {current['name']}")
            parts = line.split()
            if len(parts) < 2:
                raise InterconnectError(f"malformed *D_NET line: {line!r}")
            total = None
            if len(parts) >= 3:
                total = _parse_float(parts[2], "*D_NET cap total", parts[1]) * _C_UNIT
            current = {
                "name": parts[1], "total": total,
                "caps": {}, "res": [], "driver": "",
            }
            section = ""
            continue
        if current is None:
            continue
        if line.startswith("*CONN"):
            section = "conn"
            continue
        if line.startswith("*CAP"):
            section = "cap"
            continue
        if line.startswith("*RES"):
            section = "res"
            continue
        if line.startswith("*END"):
            records.append(current)
            current = None
            continue
        name = current["name"]
        if section == "conn" and line.startswith("*I"):
            parts = line.split()
            if len(parts) >= 3 and parts[2] == "O":
                current["driver"] = parts[1]
            continue
        if section == "cap":
            parts = line.split()
            if len(parts) == 3:
                node = parts[1]
                if node in current["caps"]:
                    raise InterconnectError(
                        f"net {name}: duplicate *CAP entry for node {node!r}"
                    )
                current["caps"][node] = (
                    _parse_float(parts[2], "*CAP", name) * _C_UNIT
                )
            elif len(parts) == 4:
                raise InterconnectError(
                    f"coupling caps are not supported (net {name})"
                )
            else:
                raise InterconnectError(
                    f"net {name}: malformed (truncated?) *CAP line: {line!r}"
                )
            continue
        if section == "res":
            parts = line.split()
            if len(parts) != 4:
                raise InterconnectError(
                    f"net {name}: malformed (truncated?) *RES line: {line!r}"
                )
            current["res"].append(
                (parts[1], parts[2], _parse_float(parts[3], "*RES", name) * _R_UNIT)
            )
    if current is not None:
        raise InterconnectError(f"unterminated *D_NET {current['name']}")
    return records


def check_cap_budget(
    record: dict, tree: RCTree, rel_tol: float = 1e-3, abs_tol: float = 1e-18
) -> Optional[str]:
    """Compare a net's ``*D_NET`` header cap total against its cap entries.

    Returns a message describing the mismatch, or ``None`` when the
    budget is consistent (or no total was declared). A mismatch means
    the file was hand-edited or corrupted after extraction.
    """
    total = record.get("total")
    if total is None:
        return None
    actual = tree.total_cap()
    if abs(actual - total) <= max(abs_tol, rel_tol * max(abs(total), abs(actual))):
        return None
    return (
        f"net {record['name']}: *D_NET cap total {total / _C_UNIT:.6f} fF "
        f"does not match the sum of *CAP entries {actual / _C_UNIT:.6f} fF"
    )


def read_spef(path: Union[str, Path]) -> Dict[str, RCTree]:
    """Parse ``*D_NET`` blocks back into :class:`RCTree` objects.

    The resistor section is re-rooted at the driver (``*I <node> O``
    connection, or the first resistor's first node when absent). The
    reader fails fast with :class:`~repro.errors.InterconnectError` on
    structural problems — the same conditions
    :func:`repro.lint.domain.lint_spef` reports as diagnostics: grammar
    violations, non-tree resistor networks, negative R/C (via
    :class:`RCTree` construction) and cap budgets that contradict the
    ``*D_NET`` header total.
    """
    nets: Dict[str, RCTree] = {}
    for record in parse_spef_records(path):
        tree = _build_tree(record)
        mismatch = check_cap_budget(record, tree)
        if mismatch is not None:
            raise InterconnectError(mismatch)
        nets[record["name"]] = tree
    return nets


def _build_tree(record: dict) -> RCTree:
    caps: Dict[str, float] = dict(record["caps"])
    adjacency: Dict[str, List[Tuple[str, float]]] = {}
    for a, b, r in record["res"]:
        adjacency.setdefault(a, []).append((b, r))
        adjacency.setdefault(b, []).append((a, r))
    if not adjacency:
        raise InterconnectError(f"net {record['name']} has no resistors")
    root = record["driver"] or record["res"][0][0]
    if root not in adjacency:
        raise InterconnectError(
            f"net {record['name']}: driver {root!r} not in the resistor network"
        )
    tree = RCTree(root, root_cap=caps.get(root, 0.0))
    visited = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop(0)
        for neighbor, r in adjacency[node]:
            if neighbor in visited:
                continue
            visited.add(neighbor)
            tree.add_segment(neighbor, node, r, caps.get(neighbor, 0.0))
            frontier.append(neighbor)
    if len(visited) != len(adjacency):
        missing = set(adjacency) - visited
        raise InterconnectError(
            f"net {record['name']}: resistor network is not a connected tree "
            f"(unreached: {sorted(missing)[:5]})"
        )
    return tree
