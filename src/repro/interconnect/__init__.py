"""Interconnect substrate: RC trees, delay metrics, SPEF subset, generators.

Replaces the paper's IC-Compiler-extracted SPEF parasitics with
synthetic-but-realistic RC trees:

* :mod:`repro.interconnect.rctree` — the tree structure and its
  embedding into transistor netlists;
* :mod:`repro.interconnect.metrics` — Elmore (Eq. 4), the second
  impulse-response moment, and the D2M metric;
* :mod:`repro.interconnect.spef` — a reader/writer for the SPEF subset
  the flow consumes (``*D_NET`` / ``*CAP`` / ``*RES``);
* :mod:`repro.interconnect.generate` — seeded random net topologies with
  per-unit-length R/C from the technology.
"""

from repro.interconnect.rctree import RCTree
from repro.interconnect.metrics import (
    d2m_delay,
    elmore_delay,
    impulse_moments,
)
from repro.interconnect.spef import read_spef, write_spef
from repro.interconnect.generate import NetGenerator
from repro.interconnect.reduction import PiModel, effective_capacitance, pi_model

__all__ = [
    "RCTree",
    "elmore_delay",
    "impulse_moments",
    "d2m_delay",
    "read_spef",
    "write_spef",
    "NetGenerator",
    "PiModel",
    "pi_model",
    "effective_capacitance",
]
