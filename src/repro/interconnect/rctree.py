"""RC tree data structure.

A net's parasitics form a tree rooted at the driver pin: each non-root
node hangs off its parent through a segment resistance and carries a
grounded capacitance (wire-to-ground plus any receiver pin load).

The class supports the three uses the flow needs:

* analytic metrics (Elmore / higher moments) via
  :mod:`repro.interconnect.metrics`;
* embedding into a transistor netlist for golden Monte-Carlo simulation
  (:meth:`RCTree.embed`);
* SPEF round-tripping (:mod:`repro.interconnect.spef`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import InterconnectError
from repro.spice.netlist import TransistorNetlist


@dataclass
class RCNode:
    """One tree node: its upstream segment resistance and grounded cap."""

    name: str
    parent: Optional[str]
    resistance: float
    cap: float


class RCTree:
    """A grounded-capacitor RC tree rooted at the driver pin.

    Parameters
    ----------
    root:
        Name of the root (driver) node. The root may carry capacitance
        but has no upstream resistance.
    root_cap:
        Grounded capacitance at the root itself.
    """

    def __init__(self, root: str = "root", root_cap: float = 0.0):
        if not math.isfinite(root_cap) or root_cap < 0:
            raise InterconnectError(
                f"root {root!r}: cap must be finite and non-negative, got {root_cap!r}"
            )
        self._nodes: Dict[str, RCNode] = {
            root: RCNode(name=root, parent=None, resistance=0.0, cap=root_cap)
        }
        self._children: Dict[str, List[str]] = {root: []}
        self.root = root

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_segment(self, name: str, parent: str, resistance: float, cap: float) -> None:
        """Attach node ``name`` to ``parent`` through ``resistance`` ohms.

        ``cap`` farads of grounded capacitance land on the new node.

        Raises
        ------
        InterconnectError
            On duplicate node names, unknown parents, non-finite values,
            non-positive resistance or negative capacitance — a tree
            that accepted any of these would silently corrupt every
            downstream Elmore/moment computation.
        """
        if name in self._nodes:
            raise InterconnectError(f"duplicate RC node {name!r}")
        if parent not in self._nodes:
            raise InterconnectError(f"parent node {parent!r} does not exist")
        if not math.isfinite(resistance) or not math.isfinite(cap):
            raise InterconnectError(
                f"segment {name!r}: non-finite R/C (R={resistance!r}, C={cap!r})"
            )
        if resistance <= 0:
            raise InterconnectError(
                f"segment {name!r}: resistance must be positive, got {resistance!r}"
            )
        if cap < 0:
            raise InterconnectError(
                f"segment {name!r}: cap must be non-negative, got {cap!r}"
            )
        self._nodes[name] = RCNode(name=name, parent=parent, resistance=resistance, cap=cap)
        self._children[name] = []
        self._children[parent].append(name)

    def add_cap(self, node: str, cap: float) -> None:
        """Add extra grounded capacitance at an existing node (pin load)."""
        if node not in self._nodes:
            raise InterconnectError(f"no RC node {node!r}")
        if not math.isfinite(cap):
            raise InterconnectError(f"node {node!r}: non-finite cap {cap!r}")
        if cap < 0:
            raise InterconnectError(
                f"node {node!r}: cap must be non-negative, got {cap!r}"
            )
        self._nodes[node].cap += cap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Dict[str, RCNode]:
        """Node name → :class:`RCNode` (insertion order: root first)."""
        return self._nodes

    def children(self, node: str) -> List[str]:
        """Direct children of ``node``."""
        return self._children[node]

    def leaves(self) -> List[str]:
        """Nodes without children (receiver pins), in insertion order."""
        return [n for n, ch in self._children.items() if not ch]

    def path_to(self, node: str) -> List[str]:
        """Node names from the root to ``node`` inclusive."""
        if node not in self._nodes:
            raise InterconnectError(f"no RC node {node!r}")
        path = [node]
        while self._nodes[path[-1]].parent is not None:
            path.append(self._nodes[path[-1]].parent)
        return list(reversed(path))

    def topological(self) -> Iterator[str]:
        """Nodes in root-to-leaf (BFS) order."""
        frontier = [self.root]
        while frontier:
            node = frontier.pop(0)
            yield node
            frontier.extend(self._children[node])

    def total_cap(self) -> float:
        """Sum of all grounded capacitance (the driver's "effective" load ceiling)."""
        return sum(n.cap for n in self._nodes.values())

    def total_resistance(self) -> float:
        """Sum of all segment resistances."""
        return sum(n.resistance for n in self._nodes.values())

    def downstream_cap(self) -> Dict[str, float]:
        """Per-node capacitance of the subtree rooted there (incl. itself)."""
        order = list(self.topological())
        down = {name: self._nodes[name].cap for name in order}
        for name in reversed(order):
            parent = self._nodes[name].parent
            if parent is not None:
                down[parent] += down[name]
        return down

    def n_segments(self) -> int:
        """Number of resistive segments (= nodes minus the root)."""
        return len(self._nodes) - 1

    # ------------------------------------------------------------------
    # Embedding into a transistor netlist
    # ------------------------------------------------------------------
    def embed(
        self,
        net: TransistorNetlist,
        prefix: str,
        root_node: str,
    ) -> Dict[str, str]:
        """Add this tree's R/C elements to a device-level netlist.

        Parameters
        ----------
        net:
            Target netlist.
        prefix:
            Unique prefix for element and node names.
        root_node:
            Circuit node the tree's root attaches to (the driver output).

        Returns
        -------
        dict
            Tree node name → circuit node name (the root maps to
            ``root_node``; every other node gets ``{prefix}_{name}``).
        """
        mapping = {self.root: root_node}
        for name in self.topological():
            node = self._nodes[name]
            if node.parent is None:
                if node.cap > 0:
                    net.add_capacitor(f"{prefix}_c_{name}", root_node, node.cap)
                continue
            circuit_node = f"{prefix}_{name}"
            mapping[name] = circuit_node
            net.add_resistor(
                f"{prefix}_r_{name}", mapping[node.parent], circuit_node, node.resistance
            )
            if node.cap > 0:
                net.add_capacitor(f"{prefix}_c_{name}", circuit_node, node.cap)
        return mapping

    def flatten(self) -> Tuple[List[str], List[int], List[float], List[float]]:
        """Flat parallel arrays ``(names, parent_index, resistance, cap)``.

        Nodes appear in topological (root-first BFS) order; the root's
        parent index is ``-1``. This is the array form consumed by the
        compiled STA engine and :func:`repro.interconnect.metrics.elmore_delays`
        — one flattening replaces repeated per-query dict traversals.
        """
        order = list(self.topological())
        pos = {name: i for i, name in enumerate(order)}
        parent = [
            pos[self._nodes[n].parent] if self._nodes[n].parent is not None else -1
            for n in order
        ]
        res = [self._nodes[n].resistance for n in order]
        cap = [self._nodes[n].cap for n in order]
        return order, parent, res, cap

    # ------------------------------------------------------------------
    def copy(self) -> "RCTree":
        """Deep copy (topology and values)."""
        out = RCTree(self.root, root_cap=self._nodes[self.root].cap)
        for name in self.topological():
            node = self._nodes[name]
            if node.parent is not None:
                out.add_segment(name, node.parent, node.resistance, node.cap)
        return out

    def __repr__(self) -> str:
        return (
            f"RCTree(root={self.root!r}, nodes={len(self._nodes)}, "
            f"R={self.total_resistance():.1f}ohm, C={self.total_cap() * 1e15:.2f}fF)"
        )
