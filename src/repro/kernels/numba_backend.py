"""Optional numba JIT backend.

Compiles the same single-pass loops as the C backend (adjugate solve,
clamp/scatter/compact update) with :func:`numba.njit` and keeps the EKV
transcendentals on the fused numpy path. The JIT functions disable
``fastmath`` so operation order matches the reference exactly —
``fastmath=True`` would license reassociation/contraction and break the
equivalence envelope.

numba is *not* a dependency of this project: when it is missing (the
normal case), :meth:`NumbaBackend.probe` reports unavailable with the
reason and :func:`repro.kernels.select_backend` degrades down the
preference order. A probe-time self-check against the numpy reference
gates the backend exactly like the C one, so a numba version with
different numerics can never be silently selected.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.kernels.fused_backend import FusedBackend

_jit_fns = None  # (solve1, solve2, solve3, update) once compiled


def _compile_jit():
    """Compile the njit kernels; raises when numba is unavailable."""
    global _jit_fns
    if _jit_fns is not None:
        return _jit_fns
    import numba  # noqa: F401 - ImportError is the probe signal

    from numba import njit

    @njit(cache=True, fastmath=False)
    def solve1(jac, resid, delta):  # pragma: no cover - needs numba
        s = jac.shape[0]
        for k in range(s):
            det = jac[k, 0, 0]
            if det == 0.0:
                return k
            delta[k, 0] = -resid[k, 0] / det
        return -1

    @njit(cache=True, fastmath=False)
    def solve2(jac, resid, delta):  # pragma: no cover - needs numba
        s = jac.shape[0]
        for k in range(s):
            a = jac[k, 0, 0]
            b = jac[k, 0, 1]
            c = jac[k, 1, 0]
            d = jac[k, 1, 1]
            det = a * d - b * c
            if det == 0.0:
                return k
            inv_det = -1.0 / det
            r0 = resid[k, 0]
            r1 = resid[k, 1]
            delta[k, 0] = (d * r0 - b * r1) * inv_det
            delta[k, 1] = (a * r1 - c * r0) * inv_det
        return -1

    @njit(cache=True, fastmath=False)
    def solve3(jac, resid, delta):  # pragma: no cover - needs numba
        s = jac.shape[0]
        for k in range(s):
            a = jac[k, 0, 0]
            b = jac[k, 0, 1]
            c = jac[k, 0, 2]
            d = jac[k, 1, 0]
            e = jac[k, 1, 1]
            f = jac[k, 1, 2]
            g = jac[k, 2, 0]
            h = jac[k, 2, 1]
            i = jac[k, 2, 2]
            ca = e * i - f * h
            cb = c * h - b * i
            cc = b * f - c * e
            cd = f * g - d * i
            ce = a * i - c * g
            cf = c * d - a * f
            cg = d * h - e * g
            ch = b * g - a * h
            ci = a * e - b * d
            det = a * ca + b * cd + c * cg
            if det == 0.0:
                return k
            inv_det = -1.0 / det
            r0 = resid[k, 0]
            r1 = resid[k, 1]
            r2 = resid[k, 2]
            delta[k, 0] = (ca * r0 + cb * r1 + cc * r2) * inv_det
            delta[k, 1] = (cd * r0 + ce * r1 + cf * r2) * inv_det
            delta[k, 2] = (cg * r0 + ch * r1 + ci * r2) * inv_det
        return -1

    @njit(cache=True, fastmath=False)
    def update(v, rows, use_rows, delta, damp, dv_tol, out_rows):
        # pragma: no cover - needs numba
        n_active, n = delta.shape
        count = 0
        bad = 0
        for r in range(n_active):
            row = rows[r] if use_rows else r
            still = False
            for j in range(n):
                x = delta[r, j]
                if x < -damp:
                    x = -damp
                elif x > damp:
                    x = damp
                delta[r, j] = x
                v[row, j] += x
                if not np.isfinite(x):
                    bad = 1
                if abs(x) >= dv_tol:
                    still = True
            if still:
                out_rows[count] = row
                count += 1
        return count, bad

    _jit_fns = (solve1, solve2, solve3, update)
    return _jit_fns


class NumbaBackend(FusedBackend):
    """numba-JIT backend (optional dependency)."""

    name = "numba"
    version = "1"

    _probe_result: Optional[Tuple[bool, str]] = None

    @classmethod
    def probe(cls) -> Tuple[bool, str]:
        if cls._probe_result is None:
            try:
                _compile_jit()
                cls._self_check()
                cls._probe_result = (True, "numba JIT compiled, self-check passed")
            except ImportError:
                cls._probe_result = (False, "numba not installed")
            except Exception as exc:  # pragma: no cover - needs numba
                cls._probe_result = (False, f"{type(exc).__name__}: {exc}")
        return cls._probe_result

    @classmethod
    def _self_check(cls) -> None:  # pragma: no cover - needs numba
        from repro.kernels.numpy_backend import NumpyBackend

        rng = np.random.default_rng(20260807)
        ref = NumpyBackend()
        inst = cls.__new__(cls)
        for n in (1, 2, 3):
            jac = rng.normal(size=(193, n, n))
            jac[:, np.arange(n), np.arange(n)] += 4.0
            resid = rng.normal(size=(193, n))
            if not np.array_equal(
                inst.solve_stack(jac.copy(), resid.copy()),
                ref.solve_stack(jac, resid),
            ):
                raise RuntimeError(f"numba solve_stack{n} self-check mismatch")
            v1 = rng.normal(size=(193, n))
            v2 = v1.copy()
            rows = np.flatnonzero(rng.random(193) < 0.7)
            d1 = 0.5 * rng.normal(size=(rows.size, n))
            d2 = d1.copy()
            got_rows, got_fin = inst.apply_update(v1, rows, d1, 0.3, 1e-2)
            want_rows, want_fin = ref.apply_update(v2, rows, d2, 0.3, 1e-2)
            same = (got_rows is None and want_rows is None) or (
                got_rows is not None
                and want_rows is not None
                and np.array_equal(got_rows, want_rows)
            )
            if not (same and got_fin == want_fin and np.array_equal(v1, v2)):
                raise RuntimeError("numba apply_update self-check mismatch")

    # ------------------------------------------------------------------
    def solve_stack(self, jac, resid):  # pragma: no cover - needs numba
        n = jac.shape[-1]
        if _jit_fns is None or n > 3 or jac.shape[0] == 0:
            return super().solve_stack(jac, resid)
        jac = np.ascontiguousarray(jac)
        resid = np.ascontiguousarray(resid)
        delta = np.empty_like(resid)
        bad = _jit_fns[n - 1](jac, resid, delta)
        if bad >= 0:
            raise np.linalg.LinAlgError(f"singular {n}x{n} Jacobian stack")
        return delta

    def apply_update(self, v, rows, delta, damp, dv_tol):
        # pragma: no cover - needs numba
        if (
            _jit_fns is None
            or delta.shape[0] == 0
            or not delta.flags.c_contiguous
            or not v.flags.c_contiguous
        ):
            return super().apply_update(v, rows, delta, damp, dv_tol)
        if rows is None:
            rows64 = np.empty(0, dtype=np.int64)
            use_rows = False
        else:
            rows64 = np.ascontiguousarray(rows, dtype=np.int64)
            use_rows = True
        out_rows = np.empty(delta.shape[0], dtype=np.int64)
        count, bad = _jit_fns[3](
            v, rows64, use_rows, delta, damp, dv_tol, out_rows
        )
        if bad:
            return rows, False
        if count == 0:
            return None, True
        return out_rows[:count].copy(), True
