"""Pluggable kernel backends for the Monte-Carlo transient hot path.

The batched Newton solver spends essentially all of its time in a
handful of primitives (EKV device evaluation, the stacked Newton solve,
the clamp/scatter/compact update). This package isolates those
primitives behind :class:`~repro.kernels.base.KernelBackend` so they can
be swapped without touching solver logic:

``numpy``
    The golden reference — the historical solver code verbatim.
    Always available; reproduces published results bit-for-bit.
``fused``
    Pure-numpy reformulation of the EKV softplus onto SIMD-vectorized
    ufuncs (``exp``/``log1p`` instead of the scalar ``logaddexp``
    inner loop). Always available.
``cnative``
    ``fused`` transcendentals plus C micro-kernels (compiled on first
    use with the system C compiler via ctypes) for the adjugate solve,
    the update/compact loop, and the EKV combine stage. Available when
    a working C toolchain is present and the compiled kernels pass
    their self-check.
``numba``
    JIT-compiled kernels; available only when :mod:`numba` is
    installed.

Selection
---------
:func:`select_backend` resolves, in order: an explicit ``name``
argument, the ``REPRO_KERNEL`` environment variable, the ``"numpy"``
default. ``"auto"`` picks the fastest *available* backend in the
preference order ``numba > cnative > fused > numpy``. Requesting an
unavailable backend falls back down the same order with a one-time
warning (never an error) — characterization on a machine without a C
compiler must still run.

Accelerated backends are validated against the reference within the
documented equivalence envelope (``docs/kernels.md``, lint rule
``KRN001``), and every backend's :meth:`identity` is salted into cache
keys (:func:`repro.cache.version_salt`) so artifacts produced by
different backends never alias.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, List, Optional, Tuple, Type

from repro.kernels.base import KernelBackend
from repro.kernels.numpy_backend import NumpyBackend

__all__ = [
    "KernelBackend",
    "KERNEL_ENV",
    "PREFERENCE_ORDER",
    "available_backends",
    "backend_identity",
    "default_backend",
    "select_backend",
]

#: Environment variable naming the desired backend. The CLI ``--kernel``
#: flag sets this so worker processes and cache-key salting see the same
#: choice as the parent.
KERNEL_ENV = "REPRO_KERNEL"

#: Fallback / ``auto`` resolution order, fastest first. ``numpy`` is the
#: terminal entry and is always available.
PREFERENCE_ORDER: Tuple[str, ...] = ("numba", "cnative", "fused", "numpy")


def _registry() -> Dict[str, Type[KernelBackend]]:
    """Backend classes by name. Imports are local so an optional
    backend with a broken import can never poison ``import repro``."""
    from repro.kernels.fused_backend import FusedBackend
    from repro.kernels.cnative_backend import CNativeBackend
    from repro.kernels.numba_backend import NumbaBackend

    return {
        "numpy": NumpyBackend,
        "fused": FusedBackend,
        "cnative": CNativeBackend,
        "numba": NumbaBackend,
    }


# Backend instances are cached because probing may compile C sources or
# trigger JIT warm-up; construction must stay cheap for the solver.
_instances: Dict[str, KernelBackend] = {}
_warned: set = set()


def _instance(name: str) -> KernelBackend:
    inst = _instances.get(name)
    if inst is None:
        inst = _registry()[name]()
        _instances[name] = inst
    return inst


def available_backends() -> List[Dict[str, str]]:
    """Probe every registered backend.

    Returns a list of ``{"name", "available", "detail"}`` dicts in
    preference order — the payload behind ``repro kernels`` style
    introspection and the docs' backend matrix.
    """
    out: List[Dict[str, str]] = []
    reg = _registry()
    for name in PREFERENCE_ORDER:
        ok, reason = reg[name].probe()
        out.append({
            "name": name,
            "available": "yes" if ok else "no",
            "detail": reason,
        })
    return out


def select_backend(
    name: Optional[str] = None,
    *,
    fallback: bool = True,
) -> KernelBackend:
    """Resolve and instantiate a kernel backend.

    Parameters
    ----------
    name:
        Backend name, ``"auto"``, or ``None`` to consult the
        ``REPRO_KERNEL`` environment variable (default ``"numpy"``).
    fallback:
        When True (the default), an unavailable request degrades down
        :data:`PREFERENCE_ORDER` with a one-time ``RuntimeWarning``.
        When False, an unavailable request raises ``ValueError`` — used
        by tests and CI jobs that must not silently run a different
        backend than they claim to.
    """
    requested = name if name is not None else os.environ.get(KERNEL_ENV) or "numpy"
    requested = requested.strip().lower()
    reg = _registry()
    if requested == "auto":
        for cand in PREFERENCE_ORDER:
            ok, _ = reg[cand].probe()
            if ok:
                return _instance(cand)
        return _instance("numpy")  # pragma: no cover - numpy always probes True
    if requested not in reg:
        if not fallback:
            raise ValueError(
                f"unknown kernel backend {requested!r}; "
                f"known: {', '.join(sorted(reg))}, or 'auto'"
            )
        _warn_once(requested, f"unknown kernel backend {requested!r}")
        return _instance("numpy")
    ok, reason = reg[requested].probe()
    if ok:
        return _instance(requested)
    if not fallback:
        raise ValueError(f"kernel backend {requested!r} unavailable: {reason}")
    start = PREFERENCE_ORDER.index(requested)
    for cand in PREFERENCE_ORDER[start + 1:]:
        cand_ok, _ = reg[cand].probe()
        if cand_ok:
            _warn_once(
                requested,
                f"kernel backend {requested!r} unavailable ({reason})",
                cand,
            )
            return _instance(cand)
    return _instance("numpy")  # pragma: no cover - numpy always probes True


def _warn_once(requested: str, why: str, fell_back_to: str = "numpy") -> None:
    if requested in _warned:
        return
    _warned.add(requested)
    warnings.warn(
        f"{why}; falling back to the {fell_back_to!r} backend",
        RuntimeWarning,
        stacklevel=3,
    )


def default_backend() -> KernelBackend:
    """The backend implied by the current environment (no argument)."""
    return select_backend(None)


def backend_identity(name: Optional[str] = None) -> str:
    """Identity string of the resolved backend, for cache-key salting.

    Uses the same resolution (env var, fallback) as
    :func:`select_backend`, so the salt always names the backend that
    would actually run.
    """
    return select_backend(name).identity()
