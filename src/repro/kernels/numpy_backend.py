"""Reference numpy kernel backend — the golden path.

This backend *is* the historical solver code: the adjugate/batched
``solve_stack`` moved verbatim from
:class:`repro.spice.transient.TransientSolver`, the EKV evaluation from
:mod:`repro.spice.mosfet`, and the scipy LU shared-factorization path.
Every other backend is validated against it (lint rule ``KRN001``), and
selecting it reproduces previously published results bit-for-bit.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

try:  # scipy is a declared dependency; guard anyway for minimal installs
    from scipy.linalg import lu_factor, lu_solve

    _HAVE_SCIPY_LU = True
except Exception:  # pragma: no cover - exercised only without scipy
    _HAVE_SCIPY_LU = False

from repro.kernels.base import KernelBackend


def adjugate_solve_stack(jac: np.ndarray, resid: np.ndarray) -> np.ndarray:
    """Newton update ``-J^{-1} r`` for a ``(S, n, n)`` stack, ``n <= 3``.

    At cell-circuit sizes the batched LAPACK dispatch of
    :func:`numpy.linalg.solve` is dominated by per-matrix overhead; an
    explicit adjugate (Cramer) expansion is pure elementwise arithmetic
    over the sample axis and several times faster. Exactly singular
    systems raise :class:`numpy.linalg.LinAlgError` like the LAPACK
    path.
    """
    n = jac.shape[-1]
    if n == 1:
        det = jac[:, 0, 0]
        if np.any(det == 0.0):
            raise np.linalg.LinAlgError("singular 1x1 Jacobian stack")
        return -resid / det[:, None]
    delta = np.empty_like(resid)
    if n == 2:
        a, b = jac[:, 0, 0], jac[:, 0, 1]
        c, d = jac[:, 1, 0], jac[:, 1, 1]
        det = a * d - b * c
        if np.any(det == 0.0):
            raise np.linalg.LinAlgError("singular 2x2 Jacobian stack")
        inv_det = -1.0 / det
        r0, r1 = resid[:, 0], resid[:, 1]
        delta[:, 0] = (d * r0 - b * r1) * inv_det
        delta[:, 1] = (a * r1 - c * r0) * inv_det
        return delta
    a, b, c = jac[:, 0, 0], jac[:, 0, 1], jac[:, 0, 2]
    d, e, f = jac[:, 1, 0], jac[:, 1, 1], jac[:, 1, 2]
    g, h, i = jac[:, 2, 0], jac[:, 2, 1], jac[:, 2, 2]
    ca = e * i - f * h  # cofactors, arranged so rows of (ca cb cc /
    cb = c * h - b * i  # cd ce cf / cg ch ci) form the inverse
    cc = b * f - c * e
    cd = f * g - d * i
    ce = a * i - c * g
    cf = c * d - a * f
    cg = d * h - e * g
    ch = b * g - a * h
    ci = a * e - b * d
    det = a * ca + b * cd + c * cg
    if np.any(det == 0.0):
        raise np.linalg.LinAlgError("singular 3x3 Jacobian stack")
    inv_det = -1.0 / det
    r0, r1, r2 = resid[:, 0], resid[:, 1], resid[:, 2]
    delta[:, 0] = (ca * r0 + cb * r1 + cc * r2) * inv_det
    delta[:, 1] = (cd * r0 + ce * r1 + cf * r2) * inv_det
    delta[:, 2] = (cg * r0 + ch * r1 + ci * r2) * inv_det
    return delta


class NumpyBackend(KernelBackend):
    """The always-available reference backend (pure numpy + scipy LU)."""

    name = "numpy"
    version = "1"

    # ------------------------------------------------------------------
    def ekv_eval(self, vg, vd, vs, params) -> Tuple[np.ndarray, ...]:
        # The canonical implementation lives in repro.spice.mosfet so
        # the module stays importable and documented on its own; this
        # backend is its pass-through.
        from repro.spice.mosfet import ekv_ids_and_derivatives

        return ekv_ids_and_derivatives(vg, vd, vs, params)

    def solve_stack(self, jac: np.ndarray, resid: np.ndarray) -> np.ndarray:
        if jac.shape[-1] > 3:
            return np.linalg.solve(jac, -resid[..., None])[..., 0]
        return adjugate_solve_stack(jac, resid)

    def apply_update(
        self,
        v: np.ndarray,
        rows: Optional[np.ndarray],
        delta: np.ndarray,
        damp: float,
        dv_tol: float,
    ) -> Tuple[Optional[np.ndarray], bool]:
        np.clip(delta, -damp, damp, out=delta)
        if rows is None:
            v += delta
        else:
            v[rows] += delta
        if not np.all(np.isfinite(delta)):
            return rows, False
        # A sample whose update fell below tolerance is converged and
        # drops out of the next iteration's linearization and solve.
        still = np.max(np.abs(delta), axis=1) >= dv_tol
        if not still.any():
            return None, True
        return (np.flatnonzero(still) if rows is None else rows[still]), True

    def fast_factorization(self, a: np.ndarray) -> object:
        if _HAVE_SCIPY_LU:
            return ("lu", lu_factor(a))
        return ("dense", a)  # pragma: no cover - exercised only without scipy

    def fast_solve(self, factor: object, rhs: np.ndarray) -> np.ndarray:
        kind, data = factor
        if kind == "lu":
            return lu_solve(data, rhs.T).T
        return np.linalg.solve(data, rhs.T).T  # pragma: no cover
