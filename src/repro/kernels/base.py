"""Kernel backend protocol for the Monte-Carlo transient hot path.

A :class:`KernelBackend` implements the per-step primitives the
batched Newton solver (:class:`repro.spice.transient.TransientSolver`)
actually spends its time in:

* :meth:`~KernelBackend.ekv_eval` — the MOSFET device evaluation
  (current + conductances) over the Monte-Carlo sample axis;
* :meth:`~KernelBackend.solve_stack` — the Newton update
  ``-J^{-1} r`` for a ``(S, n, n)`` Jacobian stack (adjugate expansion
  for ``n <= 3``, batched LAPACK above);
* :meth:`~KernelBackend.apply_update` — clamp the Newton update,
  scatter it into the state, and compact the still-active sample rows
  (the inner loop of the convergence-masked kernel);
* :meth:`~KernelBackend.fast_factorization` /
  :meth:`~KernelBackend.fast_solve` — the shared-factorization path
  for linear circuits;
* :meth:`~KernelBackend.step_masked` — one whole masked backward-Euler
  step, composed from the primitives above by the shared default
  implementation (backends may override it wholesale).

The ``numpy`` backend is the *golden reference*: it is the historical
solver code verbatim, so selecting it reproduces every previously
published number bit-for-bit. Other backends must stay within the
documented equivalence envelope (see ``docs/kernels.md`` and lint rule
``KRN001``): well-conditioned primitive outputs within 1e-15 relative,
cancellation-amplified conductances within 1e-9 relative, end-to-end
delays within 1e-12 s.

Backends are stateless and cheap to construct; per-run state (Jacobian
buffers, factorizations) stays on the solver.
"""

from __future__ import annotations

from typing import Optional, Tuple, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.spice.mosfet import MosfetParams
    from repro.spice.transient import TransientSolver


class KernelBackend:
    """Abstract kernel backend; concrete backends override the primitives.

    Class attributes
    ----------------
    name:
        Registry key (``"numpy"``, ``"fused"``, ``"cnative"``,
        ``"numba"``).
    version:
        Backend implementation version; bumped whenever the numeric
        behavior of a primitive changes. ``identity()`` — salted into
        cache keys — combines both, so artifacts produced by different
        backends (or different versions of one backend) never alias.
    """

    name: str = "abstract"
    version: str = "0"

    # ------------------------------------------------------------------
    @classmethod
    def probe(cls) -> Tuple[bool, str]:
        """Capability probe: ``(available, reason)``.

        Unavailable backends report *why* (missing dependency, failed
        compile, failed self-check) so ``repro lint`` and the CLI can
        explain a fallback instead of silently degrading.
        """
        return True, "available"

    def identity(self) -> str:
        """Stable identity string for cache-key salting."""
        return f"{self.name}-{self.version}"

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def ekv_eval(
        self,
        vg: np.ndarray,
        vd: np.ndarray,
        vs: np.ndarray,
        params: "MosfetParams",
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """EKV current and conductances ``(ids, di_dvg, di_dvd, di_dvs)``.

        Inputs broadcast over the Monte-Carlo sample axis; terminal
        voltages may be scalars (fixed nodes) or ``(S,)`` arrays.
        """
        raise NotImplementedError

    def solve_stack(self, jac: np.ndarray, resid: np.ndarray) -> np.ndarray:
        """Newton update ``-J^{-1} r`` for a ``(S, n, n)`` Jacobian stack.

        Raises :class:`numpy.linalg.LinAlgError` on an exactly singular
        system; the solver translates that into a
        :class:`~repro.errors.SimulationError` naming the culprit nodes.
        """
        raise NotImplementedError

    def apply_update(
        self,
        v: np.ndarray,
        rows: Optional[np.ndarray],
        delta: np.ndarray,
        damp: float,
        dv_tol: float,
    ) -> Tuple[Optional[np.ndarray], bool]:
        """Clamp ``delta`` to ``±damp``, add it into ``v`` (at ``rows`` when
        given), and return ``(next_rows, finite)``.

        ``next_rows`` is the compacted index array of samples whose
        clamped update still exceeded ``dv_tol`` (``None`` when every
        sample converged); ``finite`` is False when any update entry is
        non-finite (the solver then raises). ``delta`` is clamped
        in-place, mirroring the historical kernel.
        """
        raise NotImplementedError

    def fast_factorization(self, a: np.ndarray) -> object:
        """Factorize the shared ``(n, n)`` linear step matrix."""
        raise NotImplementedError

    def fast_solve(self, factor: object, rhs: np.ndarray) -> np.ndarray:
        """Solve the factorized system against an ``(S, n)`` right-hand side."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Composite step (shared implementation; backends may override)
    # ------------------------------------------------------------------
    def step_masked(
        self,
        solver: "TransientSolver",
        v_prev: np.ndarray,
        t_new: float,
        dt: float,
        v_guess: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One convergence-masked backward-Euler step.

        This is the historical ``TransientSolver._step_masked`` body
        with the inner primitives routed through the backend. Samples
        are independent (the Jacobian is block diagonal across them),
        so freezing converged rows while the rest iterate is exact.
        """
        from repro.errors import SimulationError

        c_over_dt = solver._cvec / dt  # (n,) or (S, n)
        if v_guess is None:
            v = v_prev.copy()
        else:
            v = v_prev + np.clip(v_guess - v_prev, -solver.damp, solver.damp)
        n_all = solver.n_samples
        rows: Optional[np.ndarray] = None  # None = every sample still active
        n_active = n_all
        perf = solver.perf
        for _ in range(solver.max_newton):
            va = v if rows is None else v[rows]
            vp = v_prev if rows is None else v_prev[rows]
            if c_over_dt.ndim == 1 or rows is None:
                codt = c_over_dt
            else:
                codt = c_over_dt[rows]
            jac = solver._jac_buf[:n_active]
            if solver._gmat.ndim == 2 or rows is None:
                jac[:] = solver._gmat
            else:
                jac[:] = solver._gmat[rows]
            dev = solver.compiled.device_currents(
                va, t_new, solver.params, jac=jac, rows=rows, kernel=self
            )
            resid = (
                (va - vp) * codt
                + solver._linear_currents(va, t_new, rows)
                + dev
            )
            jac[:, solver._diag_idx, solver._diag_idx] += codt
            delta = solver._solve_stack(jac, resid, t_new)
            next_rows, finite = self.apply_update(
                v, rows, delta, solver.damp, solver.dv_tol
            )
            if perf is not None:
                perf.incr(
                    newton_iterations=1,
                    linear_solves=1,
                    sample_solves=n_active,
                    full_sample_solves=n_all,
                )
                perf.add_kernel_op(self.name, "device_eval",
                                   n_active * len(solver.compiled.netlist.mosfets))
                perf.add_kernel_op(self.name, "solve_stack", n_active)
            if not finite:
                raise SimulationError(solver._nonfinite_message(v, t_new))
            if next_rows is None:
                break
            rows = next_rows
            n_active = rows.size
        return v
