/* C micro-kernels for the "cnative" backend (repro.kernels.cnative_backend).
 *
 * These replace numpy multi-pass elementwise pipelines with single-pass
 * loops on the non-transcendental hot-path primitives: the adjugate
 * Newton solve, the clamp/scatter/compact update, and the EKV algebra
 * around the (numpy-SIMD) transcendentals.
 *
 * Numeric contract: every expression below replicates the reference
 * numpy implementation operation-for-operation in the same order, and
 * the build forbids FP contraction (-ffp-contract=off), so outputs are
 * bit-identical to the reference given identical inputs. The Python
 * wrapper's probe self-check enforces this before the backend is ever
 * selected; see docs/kernels.md for the equivalence policy.
 *
 * All "stride" arguments are in ELEMENTS (not bytes); stride 0 encodes
 * a broadcast scalar.
 */

#include <math.h>
#include <stdint.h>

/* ---------------------------------------------------------------- */
/* EKV device evaluation, stage 1: bias algebra up to the halved      */
/* interpolation arguments y = x/2 (the transcendentals stay in       */
/* numpy, whose SIMD exp/log1p beat scalar libm calls here).          */
/* ---------------------------------------------------------------- */
void ekv_prep(int64_t n,
              const double *vg, int64_t svg,
              const double *vd, int64_t svd,
              const double *vs, int64_t svs,
              const double *vt, int64_t svt,
              double n_slope, double phi_t, double dibl,
              double *y_f, double *y_r,
              double *nay_f, double *nay_r, double *vds_out)
{
    for (int64_t k = 0; k < n; ++k) {
        double g = vg[k * svg];
        double d = vd[k * svd];
        double s = vs[k * svs];
        double vds = d - s;
        double vt_eff = vt[k * svt] - dibl * vds;
        double vp = (g - vt_eff) / n_slope;
        double x_f = (vp - s) / phi_t;
        double x_r = (vp - d) / phi_t;
        double yf = x_f * 0.5;
        double yr = x_r * 0.5;
        y_f[k] = yf;
        y_r[k] = yr;
        /* exp() arguments -|y| for the softplus; fabs(NaN) = NaN so
         * non-finite bias propagates like numpy's -abs(). */
        nay_f[k] = -fabs(yf);
        nay_r[k] = -fabs(yr);
        vds_out[k] = vds;
    }
}

/* softplus assembly: sp = (y > 0) ? y + l : l with l = log1p(exp(-|y|)),
 * plus -sp as the ready-made expm1 argument for the derivative. NaN y
 * fails the comparison and selects l (itself NaN via the exp chain),
 * matching np.where. */
void softplus_finish(int64_t n, const double *y, const double *l,
                     double *sp, double *neg_sp)
{
    for (int64_t k = 0; k < n; ++k) {
        double s = (y[k] > 0.0) ? y[k] + l[k] : l[k];
        sp[k] = s;
        neg_sp[k] = -s;
    }
}

/* ---------------------------------------------------------------- */
/* EKV stage 3: combine softplus values sp = softplus(x/2) and        */
/* em = expm1(-sp) into current + conductances in one pass.           */
/* ---------------------------------------------------------------- */
void ekv_combine(int64_t n,
                 const double *sp_f, const double *em_f,
                 const double *sp_r, const double *em_r,
                 const double *vds,
                 const double *ispec, int64_t sispec,
                 double n_slope, double phi_t, double dibl, double lam,
                 double *ids, double *gg, double *gd, double *gs)
{
    double dxf_dvg = 1.0 / (n_slope * phi_t);
    double dxr_dvg = dxf_dvg;
    double dxf_dvd = (dibl / n_slope) / phi_t;
    double dxf_dvs = (-dibl / n_slope - 1.0) / phi_t;
    double dxr_dvd = (dibl / n_slope - 1.0) / phi_t;
    double dxr_dvs = (-dibl / n_slope) / phi_t;
    for (int64_t k = 0; k < n; ++k) {
        double spf = sp_f[k];
        double spr = sp_r[k];
        double f_f = spf * spf;
        double f_r = spr * spr;
        double fp_f = spf * -em_f[k];
        double fp_r = spr * -em_r[k];
        double clm = 1.0 + lam * vds[k];
        double diff = f_f - f_r;
        double is = ispec[k * sispec];
        ids[k] = is * diff * clm;
        gg[k] = is * clm * (fp_f * dxf_dvg - fp_r * dxr_dvg);
        gd[k] = is * (clm * (fp_f * dxf_dvd - fp_r * dxr_dvd) + lam * diff);
        gs[k] = is * (clm * (fp_f * dxf_dvs - fp_r * dxr_dvs) - lam * diff);
    }
}

/* ---------------------------------------------------------------- */
/* Residual + Jacobian stamping of one evaluated device: the sample   */
/* loop fuses what the reference does as 8 strided full-array passes  */
/* (two current scatters, up to six conductance stamps). Terminal     */
/* indices < 0 mean "fixed node" (no row/column in the system).       */
/* Accumulation order per memory cell matches the reference exactly,  */
/* so results stay bit-identical.                                     */
/* ---------------------------------------------------------------- */
void stamp_device(int64_t n, int64_t ncols,
                  double *out, double *jac,
                  const double *ids, const double *gg,
                  const double *gd, const double *gs,
                  double sign, int64_t id, int64_t ig, int64_t is)
{
    for (int64_t k = 0; k < n; ++k) {
        double i_phys = sign * ids[k];
        double *orow = out + k * ncols;
        if (id >= 0)
            orow[id] += i_phys;
        if (is >= 0)
            orow[is] -= i_phys;
        if (!jac)
            continue;
        double *jrow = jac + k * ncols * ncols;
        if (id >= 0) {
            double *r = jrow + id * ncols;
            if (id >= 0)
                r[id] += gd[k];
            if (ig >= 0)
                r[ig] += gg[k];
            if (is >= 0)
                r[is] += gs[k];
        }
        if (is >= 0) {
            double *r = jrow + is * ncols;
            if (id >= 0)
                r[id] -= gd[k];
            if (ig >= 0)
                r[ig] -= gg[k];
            if (is >= 0)
                r[is] -= gs[k];
        }
    }
}

/* ---------------------------------------------------------------- */
/* Adjugate (Cramer) Newton solves for (S, n, n) stacks, n <= 3.      */
/* Return -1 on success, or the index of the first exactly singular   */
/* sample (the wrapper raises LinAlgError, matching numpy).           */
/* ---------------------------------------------------------------- */
int64_t solve_stack1(int64_t n, const double *jac, const double *resid,
                     double *delta)
{
    for (int64_t k = 0; k < n; ++k) {
        double det = jac[k];
        if (det == 0.0)
            return k;
        delta[k] = -resid[k] / det;
    }
    return -1;
}

int64_t solve_stack2(int64_t n, const double *jac, const double *resid,
                     double *delta)
{
    for (int64_t k = 0; k < n; ++k) {
        const double *j = jac + 4 * k;
        double a = j[0], b = j[1], c = j[2], d = j[3];
        double det = a * d - b * c;
        if (det == 0.0)
            return k;
        double inv_det = -1.0 / det;
        double r0 = resid[2 * k], r1 = resid[2 * k + 1];
        delta[2 * k] = (d * r0 - b * r1) * inv_det;
        delta[2 * k + 1] = (a * r1 - c * r0) * inv_det;
    }
    return -1;
}

int64_t solve_stack3(int64_t n, const double *jac, const double *resid,
                     double *delta)
{
    for (int64_t k = 0; k < n; ++k) {
        const double *j = jac + 9 * k;
        double a = j[0], b = j[1], c = j[2];
        double d = j[3], e = j[4], f = j[5];
        double g = j[6], h = j[7], i = j[8];
        double ca = e * i - f * h;
        double cb = c * h - b * i;
        double cc = b * f - c * e;
        double cd = f * g - d * i;
        double ce = a * i - c * g;
        double cf = c * d - a * f;
        double cg = d * h - e * g;
        double ch = b * g - a * h;
        double ci = a * e - b * d;
        double det = a * ca + b * cd + c * cg;
        if (det == 0.0)
            return k;
        double inv_det = -1.0 / det;
        double r0 = resid[3 * k], r1 = resid[3 * k + 1], r2 = resid[3 * k + 2];
        delta[3 * k] = (ca * r0 + cb * r1 + cc * r2) * inv_det;
        delta[3 * k + 1] = (cd * r0 + ce * r1 + cf * r2) * inv_det;
        delta[3 * k + 2] = (cg * r0 + ch * r1 + ci * r2) * inv_det;
    }
    return -1;
}

/* ---------------------------------------------------------------- */
/* Clamp the Newton update to ±damp (in place, NaN-preserving like    */
/* np.clip), scatter it into the (S_full, ncols) state, and compact   */
/* the still-active rows. Returns the active-row count; *nonfinite    */
/* is set when any update entry is not finite (the solver raises      */
/* before the row mask matters, so per-row NaN handling need only     */
/* agree with numpy on finite data).                                  */
/* ---------------------------------------------------------------- */
int64_t apply_update(double *v, int64_t ncols,
                     const int64_t *rows, int64_t n_active,
                     double *delta, int64_t n,
                     double damp, double dv_tol,
                     int64_t *out_rows, int64_t *nonfinite)
{
    int64_t count = 0;
    int64_t bad = 0;
    for (int64_t r = 0; r < n_active; ++r) {
        int64_t row = rows ? rows[r] : r;
        double *vrow = v + row * ncols;
        double *drow = delta + r * n;
        int still = 0;
        for (int64_t j = 0; j < n; ++j) {
            double x = drow[j];
            /* comparison-based clip: NaN fails both tests and passes
             * through, matching np.clip */
            if (x < -damp)
                x = -damp;
            else if (x > damp)
                x = damp;
            drow[j] = x;
            vrow[j] += x;
            if (!isfinite(x))
                bad = 1;
            if (fabs(x) >= dv_tol)
                still = 1;
        }
        if (still)
            out_rows[count++] = row;
    }
    *nonfinite = bad;
    return count;
}
