"""Fused pure-numpy backend: SIMD-friendly EKV transcendentals.

The reference EKV evaluation computes its softplus through
``np.logaddexp(0, x)``, whose generic two-argument inner loop is scalar
C (~1.5 ms per 65k-sample call on this container). Reformulating via
the identity::

    softplus(y) = log1p(exp(-|y|)) + max(y, 0)

touches only ``exp``/``log1p``/``where`` — all SIMD-vectorized
single-argument ufuncs in numpy — and cuts the transcendental cost by
roughly 3x while agreeing with the reference to machine precision (the
formulas are algebraically identical branch by branch; only ulp-level
rounding of the ufunc implementations differs). The solve/update
primitives are inherited unchanged from the numpy reference, so this
backend's deviations come from the device model alone and sit far
inside the documented equivalence envelope.

Always available: it needs nothing beyond numpy itself.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.kernels.numpy_backend import NumpyBackend


def fast_softplus(x: np.ndarray) -> np.ndarray:
    """``log(1 + exp(x))`` via SIMD-vectorized ``exp``/``log1p``.

    Matches :func:`repro.spice.mosfet._softplus` (``logaddexp(0, x)``)
    branch-for-branch: for ``x <= 0`` both compute ``log1p(exp(x))``;
    for ``x > 0`` both compute ``x + log1p(exp(-x))``. NaN propagates
    through ``exp``/``log1p``/``where`` exactly as through
    ``logaddexp``.
    """
    e = np.exp(-np.abs(x))
    l = np.log1p(e)
    return np.where(x > 0.0, x + l, l)


def fast_interp_f(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """EKV interpolation ``(F(x), F'(x))`` on the fast softplus.

    Mirrors :func:`repro.spice.mosfet._interp_f` with the softplus
    swapped; the derivative-via-``expm1`` identity is kept verbatim.
    """
    sp = fast_softplus(x * 0.5)
    return sp * sp, sp * -np.expm1(-sp)


class FusedBackend(NumpyBackend):
    """Pure-numpy accelerated backend (vectorized EKV transcendentals)."""

    name = "fused"
    version = "1"

    def ekv_eval(self, vg, vd, vs, params) -> Tuple[np.ndarray, ...]:
        from repro.spice.mosfet import _ekv_core

        return _ekv_core(vg, vd, vs, params, fast_interp_f)
