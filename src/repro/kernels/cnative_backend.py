"""C-native backend: ctypes micro-kernels around numpy transcendentals.

Strategy (measured on this hot path — see ``docs/kernels.md``):

* Transcendentals (``exp``/``log1p``/``expm1``) stay in numpy, whose
  SIMD ufunc loops beat scalar ``libm`` calls from C by ~3x.
* Everything else — the EKV bias algebra, the current/conductance
  combine, the adjugate Newton solve, and the clamp/scatter/compact
  update — runs as single-pass C loops (``_native.c``), eliminating a
  dozen-odd full-array numpy passes per Newton iteration.

The C source is compiled on first use with the system C compiler
(``$CC``, ``cc`` or ``gcc``) into a content-hashed shared object under
a per-user cache directory (override with ``REPRO_NATIVE_CACHE``), so
the cost is paid once per source revision, not per process.

Every C expression mirrors the reference operation-for-operation and
the build disables FP contraction, so results are bit-identical to the
``fused`` backend (and within the documented envelope of ``numpy``).
The :meth:`probe` self-check verifies this bit-identity on every
primitive before the backend can be selected; any discrepancy —
compiler quirk, missing toolchain — degrades the probe to unavailable
and selection falls back gracefully.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.kernels.fused_backend import FusedBackend

# Raw addresses are passed as void pointers: ndarray.ctypes.data is a
# plain int attribute, ~10x cheaper per call than data_as()/cast().
_void_p = ctypes.c_void_p


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / f"repro-native-{os.getuid()}"


def _compile_library() -> ctypes.CDLL:
    """Compile (if needed) and load the native kernel library."""
    src = Path(__file__).with_name("_native.c")
    code = src.read_bytes()
    digest = hashlib.sha256(code).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"repro_native_{digest}.so"
    if not so_path.exists():
        compiler = os.environ.get("CC")
        if not compiler:
            from shutil import which

            compiler = which("cc") or which("gcc") or which("clang")
        if not compiler:
            raise RuntimeError("no C compiler found (set $CC)")
        cache.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=str(cache))
        try:
            os.close(fd)
            proc = subprocess.run(
                [
                    compiler,
                    "-O2",
                    "-fPIC",
                    "-shared",
                    "-ffp-contract=off",
                    str(src),
                    "-o",
                    tmp,
                    "-lm",
                ],
                capture_output=True,
                text=True,
                timeout=120,
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"C kernel compilation failed: {proc.stderr.strip()[:500]}"
                )
            os.replace(tmp, so_path)  # atomic under concurrent builders
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
    lib = ctypes.CDLL(str(so_path))
    i64 = ctypes.c_int64
    dbl = ctypes.c_double
    lib.ekv_prep.restype = None
    lib.ekv_prep.argtypes = [
        i64,
        _void_p, i64, _void_p, i64, _void_p, i64, _void_p, i64,
        dbl, dbl, dbl,
        _void_p, _void_p, _void_p, _void_p, _void_p,
    ]
    lib.softplus_finish.restype = None
    lib.softplus_finish.argtypes = [i64, _void_p, _void_p, _void_p, _void_p]
    lib.ekv_combine.restype = None
    lib.ekv_combine.argtypes = [
        i64,
        _void_p, _void_p, _void_p, _void_p, _void_p,
        _void_p, i64,
        dbl, dbl, dbl, dbl,
        _void_p, _void_p, _void_p, _void_p,
    ]
    for fn in (lib.solve_stack1, lib.solve_stack2, lib.solve_stack3):
        fn.restype = i64
        fn.argtypes = [i64, _void_p, _void_p, _void_p]
    lib.apply_update.restype = i64
    lib.apply_update.argtypes = [
        _void_p, i64, _void_p, i64, _void_p, i64,
        dbl, dbl, _void_p, _void_p,
    ]
    lib.stamp_device.restype = None
    lib.stamp_device.argtypes = [
        i64, i64, _void_p, _void_p,
        _void_p, _void_p, _void_p, _void_p,
        dbl, i64, i64, i64,
    ]
    return lib


def _ptr_stride(x: np.ndarray) -> Tuple[int, int]:
    """(address, element-stride) for a 0-d or 1-d float64 array."""
    if x.ndim == 0:
        return x.ctypes.data, 0
    return x.ctypes.data, x.strides[0] // 8


def _dptr(x: np.ndarray) -> int:
    return x.ctypes.data


class CNativeBackend(FusedBackend):
    """ctypes C micro-kernel backend (fused transcendentals + C loops)."""

    name = "cnative"
    version = "1"

    _lib: Optional[ctypes.CDLL] = None
    _probe_result: Optional[Tuple[bool, str]] = None

    # ------------------------------------------------------------------
    @classmethod
    def probe(cls) -> Tuple[bool, str]:
        if cls._probe_result is None:
            try:
                cls._lib = _compile_library()
                cls._self_check()
                cls._probe_result = (True, "compiled C kernels, self-check passed")
            except Exception as exc:  # degrade, never break selection
                cls._lib = None
                cls._probe_result = (False, f"{type(exc).__name__}: {exc}")
        return cls._probe_result

    @classmethod
    def _self_check(cls) -> None:
        """Require bit-identity with the pure-numpy primitives.

        Runs once at probe time on deterministic pseudo-random data; a
        compiler that contracts or reorders FP ops fails here and the
        backend reports unavailable instead of producing off-envelope
        numbers.
        """
        from repro.kernels.numpy_backend import NumpyBackend
        from repro.spice.mosfet import MosfetParams

        rng = np.random.default_rng(20260807)
        ref = NumpyBackend()
        fused = FusedBackend()
        inst = cls.__new__(cls)  # bypass probe recursion; _lib already set
        s = 257
        for n in (1, 2, 3):
            jac = rng.normal(size=(s, n, n))
            jac[:, np.arange(n), np.arange(n)] += 4.0  # well conditioned
            resid = rng.normal(size=(s, n))
            got = inst.solve_stack(jac.copy(), resid.copy())
            want = ref.solve_stack(jac, resid)
            if not np.array_equal(got, want):
                raise RuntimeError(f"solve_stack{n} self-check mismatch")
            v1 = rng.normal(size=(s, n))
            v2 = v1.copy()
            rows = np.flatnonzero(rng.random(s) < 0.7)
            d1 = 0.5 * rng.normal(size=(rows.size, n))
            d2 = d1.copy()
            got_rows, got_fin = inst.apply_update(v1, rows, d1, 0.3, 1e-2)
            want_rows, want_fin = ref.apply_update(v2, rows, d2, 0.3, 1e-2)
            same_rows = (got_rows is None and want_rows is None) or (
                got_rows is not None
                and want_rows is not None
                and np.array_equal(got_rows, want_rows)
            )
            if not (
                same_rows
                and got_fin == want_fin
                and np.array_equal(v1, v2)
                and np.array_equal(d1, d2)
            ):
                raise RuntimeError("apply_update self-check mismatch")
        params = MosfetParams(
            vt=0.35 + 0.02 * rng.normal(size=s),
            ispec=np.abs(  # amperes, not a time/length unit
                1e-6 * (1.0 + 0.1 * rng.normal(size=s))),  # repro-lint: disable=UNIT001
            n_slope=1.3,
            phi_t=0.0258,
            dibl=0.08,
            lam=0.1,
        )
        vg = 0.6 * rng.random(s)
        vd = 0.6 * rng.random(s)
        vs = 0.1 * rng.random(s)
        got = inst.ekv_eval(vg, vd, vs, params)
        want = fused.ekv_eval(vg, vd, vs, params)
        for name, g, w in zip(("ids", "gg", "gd", "gs"), got, want):
            if not np.array_equal(np.asarray(g), np.asarray(w)):
                raise RuntimeError(f"ekv_eval self-check mismatch on {name}")
        # stamp_device vs the reference scatter (pmos sign, one fixed
        # terminal) — exercised exactly as device_currents drives it.
        ids_a, gg_a, gd_a, gs_a = (rng.normal(size=s) for _ in range(4))
        out1 = np.zeros((s, 3))
        out2 = np.zeros((s, 3))
        jac1 = rng.normal(size=(s, 3, 3))
        jac2 = jac1.copy()
        id_, ig, is_ = 2, -1, 0
        if not inst.stamp_device(
            out1, jac1, ids_a, gg_a, gd_a, gs_a, -1.0, id_, ig, is_
        ):
            raise RuntimeError("stamp_device refused contiguous input")
        i_phys = -1.0 * ids_a
        out2[:, id_] += i_phys
        out2[:, is_] -= i_phys
        for row, rsign in ((id_, 1.0), (is_, -1.0)):
            for col, g in ((id_, gd_a), (is_, gs_a)):
                jac2[:, row, col] += rsign * g
        if not (np.array_equal(out1, out2) and np.array_equal(jac1, jac2)):
            raise RuntimeError("stamp_device self-check mismatch")

    # ------------------------------------------------------------------
    def ekv_eval(self, vg, vd, vs, params) -> Tuple[np.ndarray, ...]:
        lib = type(self)._lib
        vg = np.asarray(vg, dtype=float)
        vd = np.asarray(vd, dtype=float)
        vs = np.asarray(vs, dtype=float)
        vt = np.asarray(params.vt, dtype=float)
        ispec = np.asarray(params.ispec, dtype=float)
        shape = np.broadcast_shapes(
            vg.shape, vd.shape, vs.shape, vt.shape, ispec.shape
        )
        if lib is None or len(shape) != 1:
            # Scalar evaluation (unit tests, sanity probes) keeps the
            # numpy shape semantics of the reference.
            return super().ekv_eval(vg, vd, vs, params)
        s = shape[0]
        y_f = np.empty(s)
        y_r = np.empty(s)
        nay_f = np.empty(s)
        nay_r = np.empty(s)
        vds = np.empty(s)
        lib.ekv_prep(
            s,
            *_ptr_stride(vg), *_ptr_stride(vd), *_ptr_stride(vs),
            *_ptr_stride(vt),
            params.n_slope, params.phi_t, params.dibl,
            _dptr(y_f), _dptr(y_r), _dptr(nay_f), _dptr(nay_r), _dptr(vds),
        )
        # Only the transcendentals run as numpy (SIMD) passes; the
        # surrounding elementwise assembly is fused into the C stages.
        # y is already x*0.5, so the math matches the fused backend
        # bit-for-bit. Buffers are reused in place (nay -> l -> em).
        np.exp(nay_f, out=nay_f)
        np.log1p(nay_f, out=nay_f)
        np.exp(nay_r, out=nay_r)
        np.log1p(nay_r, out=nay_r)
        sp_f = np.empty(s)
        em_f = np.empty(s)
        lib.softplus_finish(s, _dptr(y_f), _dptr(nay_f), _dptr(sp_f), _dptr(em_f))
        np.expm1(em_f, out=em_f)
        sp_r = np.empty(s)
        em_r = np.empty(s)
        lib.softplus_finish(s, _dptr(y_r), _dptr(nay_r), _dptr(sp_r), _dptr(em_r))
        np.expm1(em_r, out=em_r)
        ids = np.empty(s)
        gg = np.empty(s)
        gd = np.empty(s)
        gs = np.empty(s)
        ip, istride = _ptr_stride(ispec)
        lib.ekv_combine(
            s,
            _dptr(sp_f), _dptr(em_f), _dptr(sp_r), _dptr(em_r), _dptr(vds),
            ip, istride,
            params.n_slope, params.phi_t, params.dibl, params.lam,
            _dptr(ids), _dptr(gg), _dptr(gd), _dptr(gs),
        )
        return ids, gg, gd, gs

    def stamp_device(
        self,
        out: np.ndarray,
        jac: Optional[np.ndarray],
        ids: np.ndarray,
        gg: np.ndarray,
        gd: np.ndarray,
        gs: np.ndarray,
        sign: float,
        id_: int,
        ig: int,
        is_: int,
    ) -> bool:
        """Accumulate one device's currents/conductances; True if handled.

        Falls back (returns False) whenever the layout assumptions do
        not hold — the caller then runs the reference numpy stamping.
        """
        lib = type(self)._lib
        n, ncols = out.shape
        if (
            lib is None
            or not out.flags.c_contiguous
            or (jac is not None and not jac.flags.c_contiguous)
        ):
            return False
        for arr in (ids, gg, gd, gs):
            if (
                not isinstance(arr, np.ndarray)
                or arr.shape != (n,)
                or not arr.flags.c_contiguous
                or arr.dtype != np.float64
            ):
                return False
        lib.stamp_device(
            n, ncols, _dptr(out), _dptr(jac) if jac is not None else None,
            _dptr(ids), _dptr(gg), _dptr(gd), _dptr(gs),
            sign, id_, ig, is_,
        )
        return True

    def solve_stack(self, jac: np.ndarray, resid: np.ndarray) -> np.ndarray:
        lib = type(self)._lib
        n = jac.shape[-1]
        if lib is None or n > 3 or jac.shape[0] == 0:
            return super().solve_stack(jac, resid)
        jac = np.ascontiguousarray(jac)
        resid = np.ascontiguousarray(resid)
        delta = np.empty_like(resid)
        fn = (lib.solve_stack1, lib.solve_stack2, lib.solve_stack3)[n - 1]
        bad = fn(jac.shape[0], _dptr(jac), _dptr(resid), _dptr(delta))
        if bad >= 0:
            raise np.linalg.LinAlgError(f"singular {n}x{n} Jacobian stack")
        return delta

    def apply_update(
        self,
        v: np.ndarray,
        rows: Optional[np.ndarray],
        delta: np.ndarray,
        damp: float,
        dv_tol: float,
    ) -> Tuple[Optional[np.ndarray], bool]:
        lib = type(self)._lib
        if (
            lib is None
            or delta.shape[0] == 0
            or not delta.flags.c_contiguous
            or not v.flags.c_contiguous
        ):
            return super().apply_update(v, rows, delta, damp, dv_tol)
        if rows is None:
            rows_ptr = None
        else:
            rows = np.ascontiguousarray(rows, dtype=np.int64)
            rows_ptr = rows.ctypes.data
        n_active = delta.shape[0]
        out_rows = np.empty(n_active, dtype=np.int64)
        nonfinite = ctypes.c_int64(0)
        count = lib.apply_update(
            _dptr(v), v.shape[1], rows_ptr, n_active,
            _dptr(delta), delta.shape[1],
            damp, dv_tol,
            out_rows.ctypes.data, ctypes.byref(nonfinite),
        )
        if nonfinite.value:
            return rows, False
        if count == 0:
            return None, True
        return out_rows[:count].copy(), True
