"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when a transient simulation fails to converge or is ill-posed."""


class NetlistError(ReproError):
    """Raised for malformed transistor- or gate-level netlists."""


class CharacterizationError(ReproError):
    """Raised when cell characterization cannot produce valid moment tables."""


class CalibrationError(ReproError):
    """Raised when model calibration (regression / interpolation) fails."""


class InterconnectError(ReproError):
    """Raised for malformed RC trees or SPEF input."""


class TimingError(ReproError):
    """Raised by the STA engine for unusable timing graphs (cycles, dangling pins)."""


class LintConfigError(ReproError):
    """Raised for invalid lint-engine configuration.

    Covers conflicting re-registration of a rule ID with a different
    definition, unknown rule layers, and malformed baseline files —
    misconfigurations of the checker itself, as opposed to findings in
    the checked artifacts/code.
    """


class PackError(ReproError):
    """Raised for unreadable, corrupt or stale ``.rpk`` packed artifacts.

    Carries a machine-readable ``code`` naming the validation layer that
    failed (``"magic"``, ``"version"``, ``"endian"``, ``"truncated"``,
    ``"bounds"``, ``"digest"``, ``"manifest"``, ``"stale"``, ...); the
    ``PCK001``–``PCK004`` lint rules map codes onto diagnostics.
    """

    def __init__(self, message: str, code: str = "pack"):
        super().__init__(message)
        self.code = code


class ExecutionError(ReproError):
    """Raised by the work-queue executor when a task cannot be completed.

    Covers worker-process deaths (OOM kill, ``os._exit``) that survive the
    pool-recovery path, and tasks that exhaust their retry budget when no
    quarantine sink is provided.
    """


class TaskTimeoutError(ExecutionError):
    """Raised inside a worker when one task attempt exceeds its time budget."""
