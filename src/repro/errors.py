"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when a transient simulation fails to converge or is ill-posed."""


class NetlistError(ReproError):
    """Raised for malformed transistor- or gate-level netlists."""


class CharacterizationError(ReproError):
    """Raised when cell characterization cannot produce valid moment tables."""


class CalibrationError(ReproError):
    """Raised when model calibration (regression / interpolation) fails."""


class InterconnectError(ReproError):
    """Raised for malformed RC trees or SPEF input."""


class TimingError(ReproError):
    """Raised by the STA engine for unusable timing graphs (cycles, dangling pins)."""
