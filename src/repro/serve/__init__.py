"""Resident STA service: warm compiled designs behind a query server.

The batch flow pays the full pipeline on every invocation — parse,
characterize (or cache-hit), fit, compile, query, exit. For interactive
what-if timing (sweep a slew, flip a launch edge, try a correlation)
that cost structure is upside down: the compile artifact is the
expensive part and it is identical across queries. This package keeps
compiled designs **resident**:

* :mod:`repro.serve.registry` — named designs → warm
  :class:`~repro.core.sta_compiled.CompiledSTA` engines under a
  bytes-budgeted LRU;
* :mod:`repro.serve.protocol` — wire schemas (scenario-grid requests,
  per-scenario results in raw seconds for bit-exact transport);
* :mod:`repro.serve.server` — asyncio front door (unix socket +
  minimal HTTP) with bounded admission, per-request deadlines, lint
  validation and a journaled audit trail;
* :mod:`repro.serve.client` — blocking, thread-safe client.

CLI: ``repro serve`` boots a server, ``repro query`` talks to one.
Served results are bit-identical to a direct in-process
``analyze_batch`` — asserted over concurrent bursts by
``tests/serve/test_server.py``.
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import (
    QueryRequest,
    QueryResponse,
    REJECT_CODES,
    ScenarioResult,
    reject,
)
from repro.serve.registry import DesignRegistry, design_nbytes
from repro.serve.server import (
    HTTP_STATUS,
    STAServer,
    ServeConfig,
    ServerHandle,
    start_in_thread,
)

__all__ = [
    "DesignRegistry",
    "HTTP_STATUS",
    "QueryRequest",
    "QueryResponse",
    "REJECT_CODES",
    "STAServer",
    "ScenarioResult",
    "ServeClient",
    "ServeConfig",
    "ServerHandle",
    "design_nbytes",
    "reject",
    "start_in_thread",
]
