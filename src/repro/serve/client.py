"""Blocking client for the resident STA service.

Speaks either transport of :class:`repro.serve.server.STAServer`: the
newline-delimited-JSON unix socket (preferred — lowest overhead, used
by tests and CI) or the HTTP endpoint. Each request opens a fresh
connection, so one client object is safe to share across threads — the
concurrency tests fire dozens of queries through a single
:class:`ServeClient` from a thread pool.

The client performs no unit conversion: response delays arrive in
seconds exactly as the server computed them, so
``ServeClient.query(...).results[k].quantiles_s`` compares bit-for-bit
against a direct in-process ``analyze_batch`` on the same design.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.serve.protocol import QueryRequest, QueryResponse


class ServeClient:
    """One server endpoint; thread-safe (fresh connection per request).

    Parameters
    ----------
    socket_path:
        Unix-socket endpoint (takes precedence when both are given).
    host / port:
        HTTP endpoint.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 30.0,
    ):
        if socket_path is None and (host is None or port is None):
            raise ReproError(
                "client needs an endpoint: a unix socket path or host+port"
            )
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def request(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw request document, return the response document."""
        if self.socket_path is not None:
            return self._request_unix(doc)
        return self._request_http(doc)

    def _request_unix(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            sock.sendall(json.dumps(doc).encode() + b"\n")
            chunks: List[bytes] = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
                if chunk.endswith(b"\n"):
                    break
        raw = b"".join(chunks)
        if not raw:
            raise ReproError(
                f"server at {self.socket_path} closed the connection "
                "without answering"
            )
        return json.loads(raw.decode())

    def _request_http(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        op = doc.get("op", "query")
        route: Tuple[str, str] = {
            "stats": ("GET", "/stats"),
            "designs": ("GET", "/designs"),
            "ping": ("GET", "/healthz"),
        }.get(op, ("POST", "/query"))
        method, path = route
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = json.dumps(doc) if method == "POST" else None
            conn.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            payload = conn.getresponse().read()
        finally:
            conn.close()
        return json.loads(payload.decode())

    # ------------------------------------------------------------------
    def query(self, request: QueryRequest) -> QueryResponse:
        """Run one scenario-grid query; returns the typed response."""
        doc = request.to_dict()
        doc["op"] = "query"
        return QueryResponse.from_dict(self.request(doc))

    def stats(self) -> Dict[str, Any]:
        """Fetch the live server/registry counters."""
        response = self.request({"op": "stats"})
        if not response.get("ok"):
            raise ReproError(f"stats request failed: {response}")
        return response["stats"]

    def designs(self) -> List[str]:
        """List registered design names."""
        response = self.request({"op": "designs"})
        if not response.get("ok"):
            raise ReproError(f"designs request failed: {response}")
        return list(response["designs"])

    def ping(self) -> bool:
        """Liveness probe."""
        try:
            return bool(self.request({"op": "ping"}).get("ok"))
        except (OSError, json.JSONDecodeError):
            return False
