"""Wire schemas of the resident STA service.

One request describes a whole scenario *grid*: the cross product of
input slews × launch edges × stage correlations, evaluated at a shared
tuple of sigma levels. The expansion order (slew-major, then edge, then
correlation) is part of the contract — response entries line up with
:meth:`QueryRequest.scenarios`, and a client replaying the same request
against :meth:`repro.core.sta_compiled.CompiledSTA.analyze_batch`
directly gets the same scenario list in the same order.

Numbers cross the wire as JSON floats serialized with Python's
shortest-round-trip ``repr``, so delay quantiles survive the transport
bit-for-bit: a served result compares *exactly* equal to a direct
in-process query (asserted by ``tests/serve/test_server.py``).

Validation is two-layered: :func:`repro.lint.lint_serve_request`
(rules SRV001–SRV003) runs over the raw document before anything is
instantiated — the server turns ERROR diagnostics into structured
reject responses — and :meth:`QueryRequest.from_dict` then builds the
typed request from a document that passed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.sta_compiled import BatchSTAResult, Scenario
from repro.moments.stats import SIGMA_LEVELS
from repro.units import PS

#: Reject/error codes a response may carry (HTTP status mapping in
#: :mod:`repro.serve.server`).
REJECT_CODES = ("invalid", "unknown_design", "busy", "deadline", "error")


@dataclass(frozen=True)
class QueryRequest:
    """One scenario-grid query against a registered design.

    Attributes
    ----------
    design:
        Registry name of the design to query.
    slews_ps:
        Primary-input slews in picoseconds (one scenario axis).
    edges:
        Launch edge polarities, ``"rise"`` / ``"fall"``.
    levels:
        Sigma levels evaluated along every critical path.
    correlations:
        Stage-correlation values; ``None`` uses the fitted
        ``models.stage_correlation``.
    deadline_s:
        Optional per-request wall-clock budget (the server enforces
        its own default when unset).
    request_id:
        Optional client-chosen identifier echoed in the response and
        the journal audit trail.
    """

    design: str
    slews_ps: Tuple[float, ...] = (20.0,)
    edges: Tuple[str, ...] = ("rise",)
    levels: Tuple[int, ...] = SIGMA_LEVELS
    correlations: Tuple[Optional[float], ...] = (None,)
    deadline_s: Optional[float] = None
    request_id: str = ""

    @property
    def n_scenarios(self) -> int:
        """Size of the expanded scenario grid."""
        return len(self.slews_ps) * len(self.edges) * len(self.correlations)

    def scenarios(self) -> List[Scenario]:
        """Expand the grid, slew-major: slew → edge → correlation."""
        return [
            Scenario(
                input_slew=slew * PS,
                launch_rising=edge == "rise",
                levels=tuple(self.levels),
                stage_correlation=rho,
            )
            for slew in self.slews_ps
            for edge in self.edges
            for rho in self.correlations
        ]

    def to_dict(self) -> dict:
        """Wire form (the ``op`` marker is added by the transport)."""
        doc: dict = {
            "design": self.design,
            "slews_ps": list(self.slews_ps),
            "edges": list(self.edges),
            "levels": list(self.levels),
            "correlations": list(self.correlations),
        }
        if self.deadline_s is not None:
            doc["deadline_s"] = self.deadline_s
        if self.request_id:
            doc["request_id"] = self.request_id
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "QueryRequest":
        """Build from a document that passed ``lint_serve_request``."""
        return cls(
            design=str(doc["design"]),
            slews_ps=tuple(float(s) for s in doc.get("slews_ps", (20.0,))),
            edges=tuple(str(e) for e in doc.get("edges", ("rise",))),
            levels=tuple(int(n) for n in doc.get("levels", SIGMA_LEVELS)),
            correlations=tuple(
                None if rho is None else float(rho)
                for rho in doc.get("correlations", (None,))
            ),
            deadline_s=(
                float(doc["deadline_s"]) if doc.get("deadline_s") is not None
                else None
            ),
            request_id=str(doc.get("request_id", "")),
        )


@dataclass
class ScenarioResult:
    """Served timing of one scenario (seconds, full float precision).

    ``quantiles_s`` is Eq. (10) — the comonotone per-level path totals —
    and ``correlated_quantiles_s`` the correlation-aware variant at the
    scenario's stage correlation.
    """

    slew_ps: float
    edge: str
    correlation: Optional[float]
    endpoint: str
    n_stages: int
    critical_delay_s: float
    quantiles_s: Dict[int, float] = field(default_factory=dict)
    correlated_quantiles_s: Dict[int, float] = field(default_factory=dict)

    @classmethod
    def from_batch_result(cls, result: BatchSTAResult) -> "ScenarioResult":
        """Flatten one :class:`BatchSTAResult` into its wire form."""
        scenario = result.scenario
        path = result.critical_path
        stages = path.stages
        return cls(
            slew_ps=scenario.input_slew / PS,
            edge="rise" if scenario.launch_rising else "fall",
            correlation=scenario.stage_correlation,
            endpoint=stages[-1].net if stages else "",
            n_stages=len(stages),
            critical_delay_s=result.critical_delay,
            quantiles_s={n: path.total(n) for n in scenario.levels},
            correlated_quantiles_s=dict(result.correlated_quantiles),
        )

    def to_dict(self) -> dict:
        """JSON form (sigma-level keys become strings)."""
        return {
            "slew_ps": self.slew_ps,
            "edge": self.edge,
            "correlation": self.correlation,
            "endpoint": self.endpoint,
            "n_stages": self.n_stages,
            "critical_delay_s": self.critical_delay_s,
            "quantiles_s": {str(n): q for n, q in self.quantiles_s.items()},
            "correlated_quantiles_s": {
                str(n): q for n, q in self.correlated_quantiles_s.items()
            },
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ScenarioResult":
        """Inverse of :meth:`to_dict` (string keys back to ints)."""
        return cls(
            slew_ps=float(doc["slew_ps"]),
            edge=str(doc["edge"]),
            correlation=(
                None if doc.get("correlation") is None
                else float(doc["correlation"])
            ),
            endpoint=str(doc.get("endpoint", "")),
            n_stages=int(doc.get("n_stages", 0)),
            critical_delay_s=float(doc["critical_delay_s"]),
            quantiles_s={
                int(n): float(q) for n, q in doc.get("quantiles_s", {}).items()
            },
            correlated_quantiles_s={
                int(n): float(q)
                for n, q in doc.get("correlated_quantiles_s", {}).items()
            },
        )


@dataclass
class QueryResponse:
    """Outcome of one query: results on success, a coded error otherwise.

    ``code`` is one of :data:`REJECT_CODES` when ``ok`` is false;
    ``diagnostics`` carries rendered lint findings for ``invalid``
    rejects. ``served_s`` is the server-side wall time of the query
    (admission wait excluded), 0.0 for rejects.
    """

    ok: bool
    design: str = ""
    key: str = ""
    request_id: str = ""
    results: List[ScenarioResult] = field(default_factory=list)
    served_s: float = 0.0
    code: str = ""
    error: str = ""
    diagnostics: List[str] = field(default_factory=list)

    @property
    def n_scenarios(self) -> int:
        """Number of served scenario results."""
        return len(self.results)

    def to_dict(self) -> dict:
        """Wire form."""
        doc: dict = {"ok": self.ok, "design": self.design}
        if self.request_id:
            doc["request_id"] = self.request_id
        if self.ok:
            doc["key"] = self.key
            doc["served_s"] = self.served_s
            doc["results"] = [r.to_dict() for r in self.results]
        else:
            doc["code"] = self.code
            doc["error"] = self.error
            if self.diagnostics:
                doc["diagnostics"] = list(self.diagnostics)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "QueryResponse":
        """Inverse of :meth:`to_dict`."""
        return cls(
            ok=bool(doc.get("ok")),
            design=str(doc.get("design", "")),
            key=str(doc.get("key", "")),
            request_id=str(doc.get("request_id", "")),
            results=[
                ScenarioResult.from_dict(r) for r in doc.get("results", [])
            ],
            served_s=float(doc.get("served_s", 0.0)),
            code=str(doc.get("code", "")),
            error=str(doc.get("error", "")),
            diagnostics=[str(d) for d in doc.get("diagnostics", [])],
        )


def reject(
    code: str, error: str, design: str = "", request_id: str = "",
    diagnostics: Optional[List[str]] = None,
) -> QueryResponse:
    """Build a refusal response (``code`` from :data:`REJECT_CODES`)."""
    return QueryResponse(
        ok=False,
        design=design,
        request_id=request_id,
        code=code,
        error=error,
        diagnostics=list(diagnostics or []),
    )
