"""Design registry with a bytes-budgeted LRU over compiled tensor banks.

A resident server holds warm :class:`~repro.core.sta_compiled.CompiledSTA`
engines so queries skip the compile step entirely — but compiled designs
are mostly dense numpy tensors, and an unbounded registry on a box
serving many designs grows without limit. The registry therefore splits
**registration** (cheap: remember the circuit + models and the content
cache key) from **residency** (expensive: the compiled tensors), and
bounds residency by *bytes*, not entry count: one large ISCAS-like
design can outweigh dozens of adder blocks, so counting entries would
bound nothing.

Eviction is least-recently-queried and is journaled (``serve_evict``)
so an operator can see thrash in the audit trail; an evicted design is
not an error — the next query recompiles it (or reloads it from the
:class:`~repro.cache.JsonCache` compile cache, which keeps the cold
cost at JSON-parse rather than full levelization). The design being
served is never evicted to make room for itself, even when it alone
exceeds the budget.

With a packed artifact attached (:meth:`DesignRegistry.attach_pack`),
cold loads skip even the JSON parse: the ``.rpk`` is ``mmap``'d
(:mod:`repro.pack`), digest-verified, and bound as read-only zero-copy
views, so a reload costs hashing + a small manifest parse, the tensor
bytes live in shared page cache across the worker threads, and the LRU
charges the design only its resident python side tables
(:func:`design_nbytes`). A pack that fails verification — corrupt
bytes, or a ``design_cache_key`` recorded against a different circuit
/ calibration / code version — is refused and journaled, and the
registry falls back to a normal compile.

All public methods are thread-safe: worker threads of the server pool
call :meth:`engine` concurrently. A per-entry build lock (double-checked
against residency) makes sure a design compiles once even when many
queries race for it cold, while builds of *different* designs proceed
in parallel.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.cache import JsonCache
from repro.core.sta import TimingModels
from repro.core.sta_compiled import (
    CompiledDesign,
    CompiledSTA,
    compile_design,
    design_cache_key,
)
from repro.errors import ReproError
from repro.journal import RunJournal
from repro.netlist.circuit import Circuit
from repro.perf import PerfCounters

#: Pessimistic per-entry estimate for the python-dict side tables of a
#: compiled design (sink_elmore / sink_xw): key tuple + float + dict slot.
_SINK_ENTRY_BYTES = 128


def design_nbytes(design: CompiledDesign) -> int:
    """Approximate resident size of a compiled design in bytes.

    Counts the dense tensors exactly (``ndarray.nbytes``) — the flat
    parasitic arrays (``net_load``, ``end_elmore``, per-level
    ``elm_in``) included, so they cannot escape the LRU budget — and
    the per-sink dicts at a flat pessimistic estimate; python object
    headers of the dataclass shell are noise at this scale.

    A pack-backed design (``design.pack`` set) is charged its
    **resident** size only: the tensor bytes are read-only views into a
    mmap'd ``.rpk`` — shared, reclaimable page cache, not private heap
    — so only the python side tables count against the budget.
    """
    side = (len(design.sink_elmore) + len(design.sink_xw)) * _SINK_ENTRY_BYTES
    if design.pack is not None:
        return side
    total = (
        design.input_nets.nbytes
        + design.net_load.nbytes
        + design.end_elmore.nbytes
    )
    for level in design.levels:
        total += (
            level.out_net.nbytes
            + level.load.nbytes
            + level.valid.nbytes
            + level.src_net.nbytes
            + level.elm_in.nbytes
            + level.inverting.nbytes
            + level.arc_rise.nbytes
            + level.arc_fall.nbytes
        )
    arcs = design.arcs
    total += (
        arcs.ref.nbytes
        + arcs.mu_coef.nbytes
        + arcs.sigma_coef.nbytes
        + arcs.skew_coef.nbytes
        + arcs.kurt_coef.nbytes
        + arcs.slew_ref.nbytes
        + arcs.slew_coef.nbytes
        + arcs.s_ref.nbytes
        + arcs.c_ref.nbytes
        + arcs.s_lo.nbytes
        + arcs.s_hi.nbytes
        + arcs.c_lo.nbytes
        + arcs.c_hi.nbytes
    )
    return total + side


@dataclass
class _Entry:
    """One registered design (resident or not)."""

    name: str
    circuit: Circuit
    models: TimingModels
    key: str
    build_lock: threading.Lock = field(default_factory=threading.Lock)
    engine: Optional[CompiledSTA] = None
    nbytes: int = 0
    queries: int = 0
    loads: int = 0
    pack_path: Optional[Path] = None
    mmap_backed: bool = False


class DesignRegistry:
    """Named designs → warm compiled engines, under a byte budget.

    Parameters
    ----------
    cache:
        Optional compile-artifact :class:`~repro.cache.JsonCache`; with
        it, eviction demotes a design to a JSON reload instead of a full
        recompile.
    perf:
        Shared counters; loads and evictions are recorded under
        ``sta_serve_design_loads`` / ``sta_serve_evictions`` (and the
        compiled engines report their own ``sta_*`` query work here).
    journal:
        Optional audit journal (``serve_design_load`` / ``serve_evict``
        events).
    budget_bytes:
        Residency budget; ``None`` disables eviction. The budget bounds
        *tensor residency*, not registration — an evicted design stays
        registered and queryable.
    """

    def __init__(
        self,
        cache: Optional[JsonCache] = None,
        perf: Optional[PerfCounters] = None,
        journal: Optional[RunJournal] = None,
        budget_bytes: Optional[int] = None,
    ):
        self.cache = cache
        self.perf = perf if perf is not None else PerfCounters()
        self.journal = journal
        self.budget_bytes = budget_bytes
        self._lock = threading.RLock()
        self._entries: Dict[str, _Entry] = {}
        # Residency order, least-recently-queried first.
        self._resident: "OrderedDict[str, _Entry]" = OrderedDict()

    # ------------------------------------------------------------------
    def register(
        self, name: str, circuit: Circuit, models: TimingModels
    ) -> str:
        """Register a design under ``name`` and return its content key.

        Registration is cheap — no compile happens until the first
        query. Re-registering an existing name replaces it (and drops
        any resident engine of the old content).
        """
        key = design_cache_key(circuit, models)
        with self._lock:
            old = self._entries.get(name)
            if old is not None and old.key == key:
                return key
            if old is not None:
                self._resident.pop(name, None)
            self._entries[name] = _Entry(
                name=name, circuit=circuit, models=models, key=key
            )
        return key

    def attach_pack(
        self, name: str, path: Union[str, Path], verify: bool = True
    ) -> bool:
        """Attach a ``.rpk`` as the cold-load source of a registered design.

        The pack is validated **now** — header checks, per-segment
        sha256 digests (unless ``verify=False``), manifest kind, and
        the recorded ``design_cache_key`` against the live registration
        key (the PCK004 staleness contract: a pack built from a
        different circuit, calibration, or code version can never serve
        answers). Returns ``True`` and remembers the path on success;
        an invalid or stale pack is refused with a ``pack_verify``
        (``ok: false``) journal event and ``False`` — the design then
        simply compiles (or JSON-reloads) as before.

        Subsequent cold loads — first query and every
        reload-after-eviction — ``mmap`` the pack instead of parsing,
        binding tensors as read-only zero-copy views.
        """
        from repro.pack import COMPILED_DESIGN_KIND, PackError, PackFile

        path = Path(path)
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise ReproError(f"design {name!r} is not registered")
            key = entry.key
        try:
            pack = PackFile.open(path, verify=verify)
            try:
                if pack.kind != COMPILED_DESIGN_KIND:
                    raise PackError(
                        f"{path}: pack kind {pack.kind!r} is not a "
                        f"compiled design",
                        code="kind",
                    )
                recorded = pack.meta.get("design_cache_key")
                if recorded != key:
                    raise PackError(
                        f"{path}: pack records design_cache_key "
                        f"{recorded!r} but {name!r} is registered under "
                        f"{key!r} (stale artifact)",
                        code="stale",
                    )
            finally:
                pack.close()
        except PackError as exc:
            if self.journal is not None:
                self.journal.event(
                    "pack_verify",
                    path=str(path),
                    design=name,
                    ok=False,
                    error=str(exc),
                )
            return False
        with self._lock:
            if self._entries.get(name) is entry:
                entry.pack_path = path
        return True

    def _load_from_pack(self, entry: _Entry) -> Optional[CompiledDesign]:
        """mmap ``entry.pack_path`` into a design, or ``None`` to fall back.

        Verification runs on every load (digests + recorded key), so a
        pack corrupted or replaced *after* :meth:`attach_pack` is still
        refused; the failure is journaled and the caller recompiles.
        """
        from repro.pack import PackError, load_compiled_design

        try:
            return load_compiled_design(
                entry.pack_path,
                verify=True,
                expected_key=entry.key,
                perf=self.perf,
                journal=self.journal,
            )
        except (PackError, OSError) as exc:
            if self.journal is not None:
                self.journal.event(
                    "pack_verify",
                    path=str(entry.pack_path),
                    design=entry.name,
                    ok=False,
                    error=str(exc),
                )
            return None

    def names(self) -> List[str]:
        """Registered design names, insertion-ordered."""
        with self._lock:
            return list(self._entries)

    def key(self, name: str) -> str:
        """Content cache key of a registered design."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise ReproError(f"design {name!r} is not registered")
            return entry.key

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    @property
    def resident_bytes(self) -> int:
        """Total estimated bytes of resident compiled tensors."""
        with self._lock:
            return sum(e.nbytes for e in self._resident.values())

    # ------------------------------------------------------------------
    def engine(self, name: str) -> CompiledSTA:
        """Warm engine for ``name``, compiling/reloading it if cold.

        Thread-safe; concurrent cold queries for the same design build
        it exactly once (the rest wait on the entry's build lock), and
        cold builds of different designs do not serialize each other.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise ReproError(f"design {name!r} is not registered")
            if entry.engine is not None:
                self._resident.move_to_end(name)
                entry.queries += 1
                return entry.engine

        # Cold: build outside the registry lock so other designs keep
        # serving, but once per entry via its build lock.
        with entry.build_lock:
            with self._lock:
                if entry.engine is not None and self._entries.get(name) is entry:
                    self._resident.move_to_end(name)
                    entry.queries += 1
                    return entry.engine
            design = None
            if entry.pack_path is not None:
                design = self._load_from_pack(entry)
            if design is None:
                design = compile_design(
                    entry.circuit, entry.models, cache=self.cache, perf=self.perf
                )
            engine = CompiledSTA(
                entry.circuit, entry.models, perf=self.perf, design=design
            )
            nbytes = design_nbytes(design)
            with self._lock:
                if self._entries.get(name) is not entry:
                    # Replaced by a concurrent re-register; serve the
                    # build we have but do not admit it to residency.
                    return engine
                entry.engine = engine
                entry.nbytes = nbytes
                entry.mmap_backed = design.pack is not None
                entry.queries += 1
                entry.loads += 1
                self._resident[name] = entry
                self._resident.move_to_end(name)
                self.perf.incr(sta_serve_design_loads=1)
                if self.journal is not None:
                    self.journal.event(
                        "serve_design_load",
                        design=name,
                        key=entry.key,
                        nbytes=nbytes,
                        n_gates=design.n_gates,
                        n_levels=design.n_levels,
                        source="pack" if entry.mmap_backed else "compile",
                        resident_bytes=sum(
                            e.nbytes for e in self._resident.values()
                        ),
                    )
                self._evict_over_budget(keep=name)
        return engine

    def _evict_over_budget(self, keep: str) -> None:
        """Drop least-recently-queried residents while over budget.

        Caller holds ``self._lock``. ``keep`` (the design being served)
        is never evicted, so one over-budget design still serves.
        """
        if self.budget_bytes is None:
            return
        while sum(e.nbytes for e in self._resident.values()) > self.budget_bytes:
            victim_name = next(
                (n for n in self._resident if n != keep), None
            )
            if victim_name is None:
                return
            victim = self._resident.pop(victim_name)
            victim.engine = None
            victim.mmap_backed = False
            freed = victim.nbytes
            victim.nbytes = 0
            self.perf.incr(sta_serve_evictions=1)
            if self.journal is not None:
                self.journal.event(
                    "serve_evict",
                    design=victim_name,
                    key=victim.key,
                    freed_bytes=freed,
                    resident_bytes=sum(
                        e.nbytes for e in self._resident.values()
                    ),
                )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Snapshot for the ``/stats`` endpoint (JSON-safe)."""
        with self._lock:
            designs = []
            for name, entry in self._entries.items():
                designs.append(
                    {
                        "name": name,
                        "key": entry.key,
                        "resident": entry.engine is not None,
                        "nbytes": entry.nbytes,
                        "queries": entry.queries,
                        "loads": entry.loads,
                        "mmap": entry.mmap_backed,
                        "pack": str(entry.pack_path)
                        if entry.pack_path is not None
                        else None,
                    }
                )
            return {
                "designs": designs,
                "resident_bytes": sum(
                    e.nbytes for e in self._resident.values()
                ),
                "budget_bytes": self.budget_bytes,
            }
