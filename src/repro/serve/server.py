"""Resident STA service: asyncio front door, threaded query workers.

The event loop owns admission — a bounded waiting line plus an
``asyncio.Semaphore`` of execution slots — and never runs numpy; each
admitted query executes in a small :class:`~concurrent.futures.
ThreadPoolExecutor` via :meth:`CompiledSTA.analyze_batch
<repro.core.sta_compiled.CompiledSTA.analyze_batch>`, which is safe to
share across worker threads (its propagation state is per-call and its
perf updates are locked). Deadlines wrap the executor future in
``asyncio.wait_for``: a missed deadline abandons the worker's result
but answers the client immediately with code ``deadline``.

Every request leaves an audit trail in the :class:`~repro.journal.
RunJournal` — ``serve_admit`` → ``serve_start`` → ``serve_finish``
(status ``ok`` / ``deadline`` / ``error``), or ``serve_reject`` when it
is refused at the door (lint-invalid input, unknown design, full
queue). Rejection is *validated* refusal: every inbound document runs
through :func:`repro.lint.lint_serve_request` (rules SRV001–SRV003)
before anything touches a design.

Two transports share one dispatch path:

* a **unix socket** speaking newline-delimited JSON (one request
  object per line, one response object per line — the low-overhead
  path used by :class:`repro.serve.client.ServeClient` and CI);
* a minimal **HTTP/1.1** endpoint (``POST /query``, ``GET /stats``,
  ``GET /designs``, ``GET /healthz``) for humans with ``curl``.

The journal records monotonic offsets only and all timing uses
``time.perf_counter`` — the server leaks no wall-clock state into its
artifacts, same contract as the batch flow.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.journal import RunJournal
from repro.lint.domain import SERVE_MAX_SCENARIOS, lint_serve_request
from repro.perf import PerfCounters
from repro.serve.protocol import (
    QueryRequest,
    QueryResponse,
    ScenarioResult,
    reject,
)
from repro.serve.registry import DesignRegistry

#: HTTP status per reject code (``ok`` responses are 200).
HTTP_STATUS = {
    "invalid": 400,
    "unknown_design": 404,
    "busy": 429,
    "deadline": 504,
    "error": 500,
}

_MAX_REQUEST_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Operating envelope of one server.

    Attributes
    ----------
    max_concurrency:
        Queries executing simultaneously (worker thread count).
    queue_depth:
        Admitted-but-waiting queries beyond the executing ones; the
        next arrival is rejected with code ``busy``.
    default_deadline_s:
        Deadline applied when a request carries none (``None`` = no
        default deadline).
    max_scenarios:
        Per-request scenario-grid ceiling enforced by lint rule SRV003.
    """

    max_concurrency: int = 4
    queue_depth: int = 32
    default_deadline_s: Optional[float] = None
    max_scenarios: int = SERVE_MAX_SCENARIOS


class STAServer:
    """Long-lived query server over a :class:`DesignRegistry`.

    Construct, :meth:`start` (or :meth:`run` / :meth:`start_in_thread`),
    query over the unix socket or HTTP, :meth:`stop`.
    """

    def __init__(
        self,
        registry: DesignRegistry,
        config: Optional[ServeConfig] = None,
        journal: Optional[RunJournal] = None,
        perf: Optional[PerfCounters] = None,
    ):
        self.registry = registry
        self.config = config if config is not None else ServeConfig()
        self.journal = journal
        self.perf = perf if perf is not None else registry.perf
        self._ids = itertools.count(1)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._servers: List[asyncio.base_events.Server] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._slots: Optional[asyncio.Semaphore] = None
        # Loop-thread-only bookkeeping (read cross-thread for /stats).
        self._waiting = 0
        self._active = 0
        self._peak_active = 0
        self._served = 0
        self._rejected = 0
        self._deadline_missed = 0
        self.port: Optional[int] = None
        # Open connections, so shutdown can drain instead of cancel.
        self._conn_tasks: set = set()
        self._conn_writers: set = set()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def handle(self, doc: Any) -> dict:
        """Dispatch one request document to its op handler."""
        if not isinstance(doc, dict):
            self._note_reject("", "invalid")
            return reject("invalid", "request is not a JSON object").to_dict()
        op = doc.get("op", "query")
        if op == "query":
            response = await self._handle_query(doc)
            return response.to_dict()
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "designs":
            return {"ok": True, "designs": self.registry.names()}
        if op == "ping":
            return {"ok": True, "pong": True}
        self._note_reject("", "invalid")
        return reject("invalid", f"unknown op {op!r}").to_dict()

    async def _handle_query(self, doc: dict) -> QueryResponse:
        request_id = str(doc.get("request_id", "")) or f"q{next(self._ids)}"
        payload = {k: v for k, v in doc.items() if k != "op"}
        payload["request_id"] = request_id

        report = lint_serve_request(
            payload, max_scenarios=self.config.max_scenarios
        )
        if report.errors:
            diagnostics = [d.render() for d in report.errors]
            self._note_reject(request_id, "invalid", diagnostics=diagnostics)
            return reject(
                "invalid",
                f"{len(diagnostics)} validation error(s)",
                design=str(doc.get("design", "")),
                request_id=request_id,
                diagnostics=diagnostics,
            )

        request = QueryRequest.from_dict(payload)
        if request.design not in self.registry:
            self._note_reject(
                request_id, "unknown_design", design=request.design
            )
            return reject(
                "unknown_design",
                f"design {request.design!r} is not registered "
                f"(available: {', '.join(self.registry.names()) or 'none'})",
                design=request.design,
                request_id=request_id,
            )

        if self._waiting >= self.config.queue_depth:
            self._note_reject(request_id, "busy", design=request.design)
            return reject(
                "busy",
                f"admission queue full ({self._waiting} waiting, "
                f"depth {self.config.queue_depth})",
                design=request.design,
                request_id=request_id,
            )

        deadline = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        self._journal(
            "serve_admit",
            request_id=request_id,
            design=request.design,
            n_scenarios=request.n_scenarios,
            waiting=self._waiting,
            active=self._active,
        )
        assert self._slots is not None and self._loop is not None
        self._waiting += 1
        try:
            await self._slots.acquire()
        finally:
            self._waiting -= 1
        self._active += 1
        self._peak_active = max(self._peak_active, self._active)
        try:
            self._journal(
                "serve_start",
                request_id=request_id,
                design=request.design,
                n_scenarios=request.n_scenarios,
            )
            self.perf.incr(
                sta_serve_requests=1,
                sta_serve_scenarios=request.n_scenarios,
            )
            t0 = time.perf_counter()
            future = self._loop.run_in_executor(
                self._pool, self._run_query, request
            )
            try:
                response = await asyncio.wait_for(future, deadline)
            except asyncio.TimeoutError:
                self._deadline_missed += 1
                self.perf.incr(sta_serve_deadline_misses=1)
                self._journal(
                    "serve_finish",
                    request_id=request_id,
                    design=request.design,
                    status="deadline",
                    wall_s=round(time.perf_counter() - t0, 6),
                )
                return reject(
                    "deadline",
                    f"deadline of {deadline}s exceeded",
                    design=request.design,
                    request_id=request_id,
                )
            except Exception as exc:  # worker raised
                self._journal(
                    "serve_finish",
                    request_id=request_id,
                    design=request.design,
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                    wall_s=round(time.perf_counter() - t0, 6),
                )
                return reject(
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    design=request.design,
                    request_id=request_id,
                )
            wall = time.perf_counter() - t0
            response.request_id = request_id
            response.served_s = wall
            self._served += 1
            self._journal(
                "serve_finish",
                request_id=request_id,
                design=request.design,
                status="ok",
                n_scenarios=response.n_scenarios,
                wall_s=round(wall, 6),
            )
            return response
        finally:
            self._active -= 1
            self._slots.release()

    def _run_query(self, request: QueryRequest) -> QueryResponse:
        """Worker-thread body: warm engine lookup + one batch query."""
        engine = self.registry.engine(request.design)
        results = engine.analyze_batch(request.scenarios())
        return QueryResponse(
            ok=True,
            design=request.design,
            key=self.registry.key(request.design),
            results=[ScenarioResult.from_batch_result(r) for r in results],
        )

    # ------------------------------------------------------------------
    def _journal(self, event: str, **fields: Any) -> None:
        if self.journal is not None:
            self.journal.event(event, **fields)

    def _note_reject(
        self, request_id: str, code: str, design: str = "", **fields: Any
    ) -> None:
        self._rejected += 1
        self.perf.incr(sta_serve_rejects=1)
        self._journal(
            "serve_reject",
            request_id=request_id,
            design=design,
            code=code,
            **fields,
        )

    def stats(self) -> dict:
        """Live server + registry counters (the ``/stats`` payload)."""
        return {
            "served": self._served,
            "rejected": self._rejected,
            "deadline_missed": self._deadline_missed,
            "waiting": self._waiting,
            "active": self._active,
            "peak_active": self._peak_active,
            "max_concurrency": self.config.max_concurrency,
            "queue_depth": self.config.queue_depth,
            "registry": self.registry.stats(),
            "perf": self.perf.to_dict(),
        }

    # ------------------------------------------------------------------
    # Connection tracking: shutdown drains handlers instead of letting
    # asyncio.run() cancel them mid-write (which logs noisy tracebacks).
    # ------------------------------------------------------------------
    async def _tracked(self, handler, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            await handler(reader, writer)
        finally:
            self._conn_writers.discard(writer)
            self._conn_tasks.discard(task)

    # ------------------------------------------------------------------
    # Unix-socket transport: newline-delimited JSON
    # ------------------------------------------------------------------
    async def _serve_unix_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    doc = json.loads(text)
                except json.JSONDecodeError as exc:
                    self._note_reject("", "invalid")
                    out = reject("invalid", f"bad JSON: {exc}").to_dict()
                else:
                    out = await self.handle(doc)
                writer.write(json.dumps(out).encode() + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # HTTP transport: minimal HTTP/1.1, close-per-request
    # ------------------------------------------------------------------
    async def _serve_http_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, doc = await self._read_http_request(reader)
            if status != 200:
                payload = reject("invalid", str(doc)).to_dict()
            else:
                payload = await self.handle(doc)
                status = (
                    200
                    if payload.get("ok")
                    else HTTP_STATUS.get(str(payload.get("code")), 500)
                )
            body = json.dumps(payload).encode()
            writer.write(
                b"HTTP/1.1 %d %s\r\n" % (status, b"OK" if status == 200 else b"Error")
                + b"Content-Type: application/json\r\n"
                + b"Content-Length: %d\r\n" % len(body)
                + b"Connection: close\r\n\r\n"
                + body
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_http_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Any]:
        """Parse request line + headers + body into a dispatch document."""
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return 400, "malformed request line"
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            if ":" in line:
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_REQUEST_BYTES:
            return 400, f"request body over {_MAX_REQUEST_BYTES} bytes"
        body = await reader.readexactly(length) if length else b""

        if method == "GET":
            route = {
                "/stats": {"op": "stats"},
                "/designs": {"op": "designs"},
                "/healthz": {"op": "ping"},
            }.get(path)
            if route is None:
                return 400, f"no GET route {path!r}"
            return 200, route
        if method == "POST" and path == "/query":
            try:
                doc = json.loads(body.decode("utf-8")) if body else {}
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                return 400, f"bad JSON body: {exc}"
            if isinstance(doc, dict):
                doc.setdefault("op", "query")
            return 200, doc
        return 400, f"no route {method} {path!r}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
    ) -> None:
        """Bind the requested transports (at least one required)."""
        if socket_path is None and host is None:
            raise ReproError(
                "serve needs a transport: pass a unix socket path, "
                "a host/port, or both"
            )
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="sta-serve",
        )
        self._slots = asyncio.Semaphore(self.config.max_concurrency)

        endpoints: Dict[str, Any] = {}
        if socket_path is not None:
            self._servers.append(
                await asyncio.start_unix_server(
                    lambda r, w: self._tracked(
                        self._serve_unix_connection, r, w
                    ),
                    path=socket_path,
                )
            )
            endpoints["socket"] = socket_path
        if host is not None:
            http_server = await asyncio.start_server(
                lambda r, w: self._tracked(self._serve_http_connection, r, w),
                host=host,
                port=port,
            )
            self._servers.append(http_server)
            self.port = http_server.sockets[0].getsockname()[1]
            endpoints["host"] = host
            endpoints["port"] = self.port
        self._journal(
            "serve_listen",
            designs=self.registry.names(),
            max_concurrency=self.config.max_concurrency,
            queue_depth=self.config.queue_depth,
            **endpoints,
        )

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop`, then tear the transports down."""
        assert self._stop_event is not None
        await self._stop_event.wait()
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        # Drain open connections: closing their transports makes the
        # handlers' reads return EOF so they exit on their own.
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        self._journal(
            "serve_shutdown",
            served=self._served,
            rejected=self._rejected,
            deadline_missed=self._deadline_missed,
            peak_active=self._peak_active,
        )

    def stop(self) -> None:
        """Request shutdown (thread-safe)."""
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    def run(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: int = 0,
        ready: Optional[Any] = None,
    ) -> None:
        """Foreground entry point: bind, signal readiness, serve.

        ``ready`` is an optional zero-argument callable invoked on the
        loop after binding (e.g. write a ready file for a supervisor).
        """

        async def _main() -> None:
            await self.start(socket_path=socket_path, host=host, port=port)
            loop = asyncio.get_running_loop()
            # Graceful stop on SIGTERM/SIGINT so a supervised server
            # still writes its serve_shutdown journal bracket. Signal
            # handlers only install on the main thread — embedded runs
            # (start_in_thread) rely on an explicit stop() instead.
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.stop)
                except (NotImplementedError, RuntimeError, ValueError):
                    break
            if ready is not None:
                ready()
            await self.serve_until_stopped()

        asyncio.run(_main())


class ServerHandle:
    """A server running in a daemon thread (tests, CI, embedding)."""

    def __init__(self, server: STAServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join its thread."""
        self.server.stop()
        self.thread.join(timeout=timeout)


def start_in_thread(
    server: STAServer,
    socket_path: Optional[str] = None,
    host: Optional[str] = None,
    port: int = 0,
    timeout: float = 10.0,
) -> ServerHandle:
    """Run ``server`` in a background thread; return once it is bound."""
    bound = threading.Event()
    failure: List[BaseException] = []

    def _ready() -> None:
        bound.set()

    def _body() -> None:
        try:
            server.run(
                socket_path=socket_path, host=host, port=port, ready=_ready
            )
        except BaseException as exc:  # surfaced to the starter below
            failure.append(exc)
            bound.set()

    thread = threading.Thread(
        target=_body, name="sta-serve-loop", daemon=True
    )
    thread.start()
    if not bound.wait(timeout=timeout):
        server.stop()
        raise ReproError(f"server failed to bind within {timeout}s")
    if failure:
        raise ReproError(f"server failed to start: {failure[0]}")
    return ServerHandle(server, thread)
