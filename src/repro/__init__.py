"""repro — N-sigma delay calibration considering cell/wire interaction.

A full-stack reproduction of Jin et al., "A Novel Delay Calibration
Method Considering Interaction between Cells and Wires" (DATE 2023):

* :mod:`repro.variation` — process-variation substrate (Pelgrom mismatch,
  global/local decomposition, Monte-Carlo sampling);
* :mod:`repro.spice` — batched transistor-level transient simulator used
  as the golden reference in place of HSPICE + TSMC 28 nm;
* :mod:`repro.cells` — synthetic standard-cell library and moment
  characterization;
* :mod:`repro.interconnect` — RC trees, Elmore/D2M metrics, SPEF subset;
* :mod:`repro.netlist` — gate-level circuits, Verilog subset, benchmark
  generators (ISCAS85-like, PULPino functional units);
* :mod:`repro.moments` — statistics: moments, quantiles, distribution fits;
* :mod:`repro.core` — the paper's contribution: the N-sigma cell/wire
  models, moment calibration, and the statistical STA engine;
* :mod:`repro.baselines` — LSN, Burr, corner-STA, correction-factor and
  ML-based comparators plus the golden path Monte-Carlo;
* :mod:`repro.parallel` / :mod:`repro.cache` / :mod:`repro.perf` —
  work-queue executor (``REPRO_WORKERS``), content-hashed artifact
  cache, and solver performance counters.
"""

__version__ = "1.0.0"
