"""Structured JSONL run journal for long batch jobs.

Characterization runs are hours of independent Monte-Carlo tasks; when
one is interrupted, resumed, or partially degraded, the operator needs
a faithful record of *what actually happened*: which tasks ran, which
were retried and why, which were quarantined, what was restored from a
checkpoint, and how the perf counters evolved. :class:`RunJournal`
appends one JSON object per line to a journal file as events occur, so
a killed process leaves a readable prefix rather than a corrupt blob.

Event vocabulary (the ``event`` field):

``run_start`` / ``run_finish``
    Run bracket. ``run_start`` records the configuration (seed, worker
    count, retry policy); ``run_finish`` records the outcome status
    (``ok`` / ``error``) and totals. A journal with a ``run_start``
    and no matching ``run_finish`` is an interrupted run — a resume
    candidate (lint rule RUN003).
``task_start`` / ``task_finish`` / ``task_retry`` / ``task_quarantine``
    Per-task lifecycle from :func:`repro.parallel.parallel_map`.
    Retries carry the attempt number and the error; quarantines carry
    the full structured diagnostic (lint rule RUN001 surfaces them).
``pool_crash``
    A worker process died (OOM kill, ``os._exit``); the named tasks
    were re-executed in isolation instead of aborting the run.
``timeout_unsupported``
    A ``task_timeout`` was requested but cannot be enforced on this
    platform (no ``SIGALRM``); attempts ran unbounded.
``checkpoint`` / ``checkpoint_restore``
    An arc table was persisted to / restored from the artifact cache.
``cache_corrupt``
    A cached artifact failed to parse and was unlinked (demoted to a
    miss).
``pack_write`` / ``pack_load`` / ``pack_verify``
    Packed binary artifacts (:mod:`repro.pack`): an ``.rpk`` written
    (path, kind, size, segment count), one opened by ``mmap`` (with its
    content identity), and a full per-segment sha256 verification pass
    with its outcome — ``pack_verify`` with ``ok: false`` is the audit
    trace of a corrupt or stale pack being refused.
``perf_snapshot``
    A :class:`~repro.perf.PerfCounters` dump at a flow stage boundary
    (includes per-arc wall time / sample attribution when available).
``surrogate_fit`` / ``acquisition`` / ``surrogate_fallback``
    Active-learning surrogate characterization
    (:mod:`repro.surrogate`): one ``surrogate_fit`` per GP refit round
    with the per-statistic predicted standard errors, one
    ``acquisition`` per batch of chosen grid points, and a
    ``surrogate_fallback`` when an arc reverts to dense simulation
    (cross-validation breach or a grid too small to save anything).
``serve_listen`` / ``serve_shutdown``
    Resident STA service bracket (:mod:`repro.serve`): endpoints the
    server bound at startup, and the totals at shutdown.
``serve_design_load`` / ``serve_evict``
    Design-registry lifecycle: a design compiled (or reloaded from the
    compile cache) into residency with its content key and tensor-bank
    byte size, and a resident design dropped by the bytes-budgeted LRU.
``serve_admit`` / ``serve_start`` / ``serve_finish`` / ``serve_reject``
    Per-request audit trail: admission into the bounded queue, query
    execution start, completion (with status ``ok`` / ``deadline`` /
    ``error`` and wall time), and refusal at the door (full queue,
    lint-rejected input, unknown design) with the reject reason.

Timestamps are **monotonic offsets** from journal creation (``t_s``),
not wall-clock datetimes: the journal must never leak irreproducible
state into artifacts, and offsets are what post-mortems actually use.

Every record carries a monotonically increasing ``seq`` so truncation
and interleaving are detectable (lint rule RUN002).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

#: Known event names (lint flags anything else as RUN002).
KNOWN_EVENTS = frozenset({
    "run_start",
    "run_finish",
    "task_start",
    "task_finish",
    "task_retry",
    "task_quarantine",
    "arc_quarantine",
    "pool_crash",
    "timeout_unsupported",
    "checkpoint",
    "checkpoint_restore",
    "cache_corrupt",
    "pack_write",
    "pack_load",
    "pack_verify",
    "perf_snapshot",
    "surrogate_fit",
    "acquisition",
    "surrogate_fallback",
    "serve_listen",
    "serve_shutdown",
    "serve_design_load",
    "serve_evict",
    "serve_admit",
    "serve_start",
    "serve_finish",
    "serve_reject",
    "note",
})


class RunJournal:
    """Append-only JSONL event log of one (or several stacked) runs.

    Parameters
    ----------
    path:
        Journal file; created (with parents) on first use and opened in
        append mode, so an interrupted run's journal survives and the
        resume run's events stack after it.
    run_id:
        Free-form identifier written into every ``run_start`` event
        (e.g. the flow cache key); purely informational.
    """

    def __init__(self, path: Union[str, Path], run_id: str = ""):
        self.path = Path(path)
        self.run_id = run_id
        self.seq = 0
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[TextIO] = self.path.open("a")

    # ------------------------------------------------------------------
    def event(self, name: str, **fields: Any) -> Dict[str, Any]:
        """Append one event record (flushed immediately) and return it.

        Thread-safe: ``seq`` assignment and the write+flush happen under
        one lock, so concurrent writers (the serving event loop and its
        worker threads) can never interleave lines or duplicate sequence
        numbers — lint rule RUN002 depends on both.
        """
        with self._lock:
            record: Dict[str, Any] = {
                "seq": self.seq,
                "t_s": round(time.perf_counter() - self._t0, 6),
                "event": name,
            }
            record.update(fields)
            if self._fh is None:
                raise ValueError(f"journal {self.path} is closed")
            self._fh.write(
                json.dumps(record, sort_keys=False, default=repr) + "\n"
            )
            self._fh.flush()
            self.seq += 1
            return record

    def run_start(self, **config: Any) -> Dict[str, Any]:
        """Emit the run bracket opener with the run configuration."""
        return self.event("run_start", run_id=self.run_id, **config)

    def run_finish(self, status: str = "ok", **totals: Any) -> Dict[str, Any]:
        """Emit the run bracket closer (``status``: ``ok`` / ``error``)."""
        return self.event("run_finish", run_id=self.run_id, status=status, **totals)

    def perf_snapshot(self, counters, stage: str = "") -> Dict[str, Any]:
        """Emit a :class:`~repro.perf.PerfCounters` snapshot."""
        return self.event("perf_snapshot", stage=stage, counters=counters.to_dict())

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying file (further events raise)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunJournal({str(self.path)!r}, seq={self.seq})"


def read_journal(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a journal file into a list of event dicts.

    Raises ``ValueError`` naming the offending line on corrupt input;
    use :func:`repro.lint.lint_journal` for a diagnosing, non-raising
    validation pass.
    """
    events: List[Dict[str, Any]] = []
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: corrupt journal line: {exc}") from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: journal record is not an object")
            events.append(record)
    return events
