"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``characterize``
    Monte-Carlo characterize library cells and write the Liberty-like
    JSON tables.
``analyze``
    Run the statistical STA on a benchmark circuit (or a structural
    Verilog file) and print the critical path with its sigma-level
    quantiles. With ``--batch``, compile the design once
    (:mod:`repro.core.sta_compiled`) and evaluate a whole grid of
    (input slew × launch edge) scenarios in one vectorized pass.
``serve``
    Boot the resident STA service (:mod:`repro.serve`): register one
    or more circuits, keep their compiled engines warm, and answer
    concurrent scenario-grid queries over a unix socket and/or HTTP.
``query``
    Talk to a running service: scenario-grid queries, ``--stats``,
    ``--designs``.
``pack`` / ``unpack`` / ``inspect``
    Produce, expand and audit the mmap-able binary ``.rpk`` artifacts
    (:mod:`repro.pack`): ``pack`` compiles circuits (and optionally the
    characterized library) into single-file packs that ``serve --pack``
    and the :class:`repro.cache.PackCache` load by mmap + digest verify;
    ``unpack`` emits the equivalent plain-JSON document; ``inspect``
    prints the manifest and re-verifies every segment digest.
``cells``
    List the synthetic library with pin caps and Pelgrom coefficients.
``lint``
    Static checks over flow artifacts (SPEF, Verilog, characterization
    and model JSON) and, with ``--codebase``, the package source
    itself. See ``docs/lint.md`` for the rule catalogue.

All commands accept ``--seed`` and the Monte-Carlo fidelity knobs; run
``python -m repro <command> --help`` for details.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.units import FF, PS
from repro.variation.parameters import Technology, VariationModel


def _add_flow_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="master RNG seed")
    parser.add_argument("--samples", type=int, default=1000,
                        help="MC samples per characterization point")
    parser.add_argument("--cache-dir", default=".repro_cache",
                        help="characterization/model cache directory")
    parser.add_argument("--vdd", type=float, default=0.6,
                        help="supply voltage in volts")
    parser.add_argument("--cells", default="",
                        help="comma-separated cell subset (default: all)")
    parser.add_argument("--fast", action="store_true",
                        help="coarse grid / small wire fit for quick looks")
    parser.add_argument("--workers", type=int, default=None,
                        help="characterization worker processes "
                             "(default: $REPRO_WORKERS or 1; 0 = all cores)")
    parser.add_argument("--kernel", default=None,
                        help="transient-solver kernel backend: numpy, fused, "
                             "cnative, numba or auto (default: $REPRO_KERNEL "
                             "or numpy; unavailable backends fall back with "
                             "a warning)")
    parser.add_argument("--surrogate", default=None,
                        help="characterization surrogate: 'gp' enables "
                             "active-learning GP characterization (simulate "
                             "a few grid points, predict the rest), 'off' "
                             "forces dense (default: $REPRO_SURROGATE or "
                             "dense)")
    parser.add_argument("--perf", action="store_true",
                        help="print solver/stage performance counters")
    parser.add_argument("--max-retries", type=int, default=0,
                        help="extra attempts per characterization task after "
                             "a failure (retries reuse the task seed, so "
                             "results stay bit-identical)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        help="per-attempt wall-clock budget in seconds for "
                             "each characterization task (default: none)")
    parser.add_argument("--quarantine-budget", type=int, default=0,
                        help="how many quarantined arcs the run tolerates "
                             "before exiting nonzero (-1 = unlimited)")
    parser.add_argument("--resume", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="resume from per-arc checkpoints in --cache-dir "
                             "(--no-resume recomputes every arc)")
    parser.add_argument("--journal", default="",
                        help="append a JSONL run journal to this path "
                             "(task/retry/quarantine/checkpoint events; "
                             "lint it with `repro lint <path>`)")


def _make_flow(args):
    from repro.core.flow import DelayCalibrationFlow
    from repro.kernels import KERNEL_ENV

    if getattr(args, "kernel", None):
        # Export the choice so version_salt() and any process that
        # re-resolves from the environment agree with this run.
        os.environ[KERNEL_ENV] = args.kernel
    tech = Technology().at_vdd(args.vdd)
    cells = [c.strip() for c in args.cells.split(",") if c.strip()] or None
    extra = {}
    if args.fast:
        extra = {
            "slews": (10 * PS, 80 * PS, 250 * PS),
            "loads": (0.1 * FF, 1.0 * FF, 4.0 * FF, 9.0 * FF),
            "wire_fit_samples": 200,
            "wire_fit_trees": 1,
        }
    budget = args.quarantine_budget
    return DelayCalibrationFlow(
        tech=tech,
        variation=VariationModel(),
        seed=args.seed,
        cache_dir=args.cache_dir,
        n_samples=args.samples,
        cell_names=cells,
        workers=args.workers,
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
        quarantine_budget=None if budget is not None and budget < 0 else budget,
        resume=args.resume,
        journal=args.journal or None,
        kernel=getattr(args, "kernel", None),
        surrogate=getattr(args, "surrogate", None),
        **extra,
    )


def _print_perf(flow) -> None:
    print()
    print(flow.perf_report().summary())


def cmd_characterize(args) -> int:
    """Characterize library cells and write Liberty-like JSON tables."""
    from repro.cells.liberty import save_library_characterization
    from repro.errors import ReproError

    flow = _make_flow(args)
    print(f"Characterizing {len(flow.cell_names)} cells at "
          f"{flow.tech.vdd} V with {flow.n_samples} samples/point ...")
    try:
        charac = flow.characterize()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    save_library_characterization(charac, args.output)
    print(f"Wrote {len(charac)} arc tables to {args.output}")
    for q in charac.quarantined:
        print(f"warning: quarantined arc {'/'.join(q.arc_key)} "
              f"({q.error_type}: {q.message})", file=sys.stderr)
    if args.perf:
        _print_perf(flow)
    return 0


def cmd_cells(args) -> int:
    """Print the synthetic library with pin caps and Pelgrom scales."""
    from repro.cells.library import build_default_library

    tech = Technology().at_vdd(args.vdd)
    library = build_default_library(tech)
    print(f"{'cell':<10} {'inputs':<8} {'stack':>5} {'pinA cap(fF)':>13} "
          f"{'Pelgrom scale':>14}")
    for cell in library:
        print(f"{cell.name:<10} {','.join(cell.inputs):<8} {cell.n_stack:>5} "
              f"{cell.input_cap('A', tech) / FF:>13.3f} "
              f"{cell.variability_scale():>14.3f}")
    return 0


def _parse_batch_scenarios(args):
    """Build the Scenario list of ``analyze --batch`` from the CLI knobs."""
    from repro.core.sta_compiled import Scenario

    slews = [float(s) for s in args.batch_slews.split(",") if s.strip()]
    edges = []
    for token in args.batch_edges.split(","):
        token = token.strip().lower()
        if not token:
            continue
        if token not in ("rise", "fall"):
            raise ValueError(f"--batch-edges entries must be rise/fall, got {token!r}")
        edges.append(token == "rise")
    return [
        Scenario(input_slew=s * PS, launch_rising=e)
        for s in (slews or [args.input_slew])
        for e in (edges or [True])
    ]


def _resolve_circuit(name: str, tech, width: int, parasitic_seed: int):
    """Resolve a circuit spec shared by ``analyze`` and ``serve``.

    ``name`` is a Verilog file path, an ISCAS85 profile name, or a
    PULPino unit (ADD/SUB/MUL/DIV). Returns the parasitic-annotated
    circuit, or ``None`` after printing a usage error.
    """
    from repro.netlist.benchmarks import (
        ISCAS85_PROFILES,
        attach_parasitics,
        build_iscas85_like,
        build_pulpino_unit,
    )
    from repro.netlist.verilog import read_verilog

    if Path(name).exists():
        circuit = read_verilog(name)
    elif name in ISCAS85_PROFILES:
        circuit = build_iscas85_like(name)
    elif name.upper() in ("ADD", "SUB", "MUL", "DIV"):
        circuit = build_pulpino_unit(name.upper(), width)
    else:
        print(f"error: {name!r} is neither a file, an ISCAS85 profile "
              f"({', '.join(ISCAS85_PROFILES)}) nor a PULPino unit", file=sys.stderr)
        return None
    attach_parasitics(circuit, tech, seed=parasitic_seed)
    return circuit


def cmd_analyze(args) -> int:
    """Statistical STA on a benchmark circuit or Verilog file."""
    from repro.core.sta import StatisticalSTA

    flow = _make_flow(args)
    circuit = _resolve_circuit(
        args.circuit, flow.tech, args.width, args.parasitic_seed
    )
    if circuit is None:
        return 2
    print(f"Circuit: {circuit}")

    print("Fitting models (cached) ...")
    models = flow.fit_models()

    from repro.core.report import format_path_report, format_stage_budget

    if args.batch:
        from repro.cache import JsonCache
        from repro.core.sta_compiled import CompiledSTA

        try:
            scenarios = _parse_batch_scenarios(args)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        engine = CompiledSTA(circuit, models, cache=JsonCache(args.cache_dir),
                             perf=flow.perf)
        results = engine.analyze_batch(scenarios)
        print(f"Compiled: {engine.design.n_levels} levels, "
              f"{engine.design.n_arcs} arcs, "
              f"{engine.design.arcs.n_arcs} packed arc rows")
        for scenario, result in zip(scenarios, results):
            edge = "rise" if scenario.launch_rising else "fall"
            quantiles = "  ".join(
                f"{n:+d}s={result.critical_path.total(n) / PS:.1f}ps"
                for n in scenario.levels
            )
            print(f"slew {scenario.input_slew / PS:5.1f} ps {edge:<4} "
                  f"-> {quantiles}")
        worst = max(results, key=lambda r: r.critical_delay)
        print()
        print(format_path_report(worst, max_stages=args.max_stages))
    else:
        result = StatisticalSTA(circuit, models,
                                input_slew=args.input_slew * PS).analyze()
        print()
        print(format_path_report(result, max_stages=args.max_stages))
        print()
        print(format_stage_budget(result.critical_path))
    if args.perf:
        _print_perf(flow)
    return 0


def cmd_lint(args) -> int:
    """Run lint rules over artifacts and/or the package source.

    Exit codes: 0 clean, 1 findings (ERROR severity by default;
    warnings too under ``--strict``), 2 usage errors. With
    ``--baseline``, only findings *not* in the baseline count.
    """
    import repro.lint as lint

    if args.list_rules:
        layer_width = max(len(r.layer) for r in lint.all_rules())
        for rule in lint.all_rules():
            print(f"{rule.rule_id:<8} {rule.layer:<{layer_width}} "
                  f"{rule.severity.name.lower():<8} {rule.summary}")
        return 0
    if not args.paths and not args.codebase and not args.deep:
        print("error: nothing to lint — give artifact paths, --codebase "
              "and/or --deep", file=sys.stderr)
        return 2

    report = lint.LintReport()
    for path in args.paths:
        if not Path(path).exists():
            print(f"error: no such artifact: {path}", file=sys.stderr)
            return 2
        if args.deep:
            # Deep mode lints *source* (a .py file or a source tree).
            p = Path(path)
            if p.is_dir() or p.suffix == ".py":
                report.extend(lint.lint_deep(p))
            else:
                report.extend(lint.lint_artifact(path))
        else:
            report.extend(lint.lint_artifact(path))
    if args.codebase:
        report.extend(lint.lint_codebase())
        if args.deep:
            report.extend(lint.lint_deep())
    if args.deep and not args.paths and not args.codebase:
        report.extend(lint.lint_deep())

    disabled = {r.strip() for r in args.disable.split(",") if r.strip()}
    if disabled:
        report = report.suppress(disabled)

    if args.update_baseline:
        if not args.baseline:
            print("error: --update-baseline requires --baseline PATH",
                  file=sys.stderr)
            return 2
        lint.Baseline.from_report(report).save(args.baseline)
        print(f"baseline written: {args.baseline} "
              f"({len(report.diagnostics)} accepted finding(s))")
        return 0
    if args.baseline:
        baseline = lint.Baseline.load(args.baseline)
        report, matched = baseline.filter_new(report)
        stale = len(baseline) - matched
        if stale:
            print(f"note: {stale} baseline entr"
                  f"{'y' if stale == 1 else 'ies'} no longer fire(s) — "
                  f"refresh with --update-baseline", file=sys.stderr)

    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        print(lint.sarif_json(report))
    else:
        print(report.format_text())
    failing = report.errors if not args.strict \
        else report.errors + report.warnings
    return 0 if not failing else 1


def cmd_serve(args) -> int:
    """Boot the resident STA service over one or more circuits."""
    from repro.cache import JsonCache
    from repro.errors import ReproError
    from repro.journal import RunJournal
    from repro.serve import DesignRegistry, STAServer, ServeConfig

    if args.socket is None and args.host is None:
        print("error: serve needs --socket PATH and/or --host HOST",
              file=sys.stderr)
        return 2

    flow = _make_flow(args)
    print("Fitting models (cached) ...")
    models = flow.fit_models()

    journal = RunJournal(args.journal) if args.journal else None
    budget = (
        int(args.lru_mb * 1024 * 1024) if args.lru_mb is not None else None
    )
    registry = DesignRegistry(
        cache=JsonCache(args.cache_dir),
        perf=flow.perf,
        journal=journal,
        budget_bytes=budget,
    )
    for name in args.circuits:
        circuit = _resolve_circuit(
            name, flow.tech, args.width, args.parasitic_seed
        )
        if circuit is None:
            return 2
        key = registry.register(circuit.name, circuit, models)
        print(f"Registered {circuit.name} (key {key[:12]}...)")

    if args.pack:
        pack_dir = Path(args.pack)
        for name in registry.names():
            rpk = pack_dir / f"{name}.rpk"
            if not rpk.exists():
                continue
            if registry.attach_pack(name, rpk):
                print(f"Attached pack {rpk} ({name} cold-loads by mmap)")
            else:
                print(f"warning: refused pack {rpk} for {name} (corrupt "
                      f"or stale; the design will compile instead)",
                      file=sys.stderr)

    config = ServeConfig(
        max_concurrency=args.concurrency,
        queue_depth=args.queue_depth,
        default_deadline_s=args.deadline,
        max_scenarios=args.max_scenarios,
    )
    server = STAServer(registry, config, journal=journal, perf=flow.perf)

    def _ready() -> None:
        endpoint = args.socket if args.socket else f"{args.host}:{server.port}"
        print(f"Serving {len(registry.names())} design(s) on {endpoint} "
              f"(concurrency {config.max_concurrency}, "
              f"queue {config.queue_depth})", flush=True)
        if args.ready_file:
            Path(args.ready_file).write_text(endpoint + "\n")

    try:
        server.run(socket_path=args.socket, host=args.host, port=args.port,
                   ready=_ready)
    except KeyboardInterrupt:
        pass
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        # Drop the readiness marker on the way out (SIGTERM/SIGINT drain
        # included) so supervisors never see a stale ready file from a
        # server that is no longer listening.
        if args.ready_file:
            Path(args.ready_file).unlink(missing_ok=True)
        if journal is not None:
            journal.close()
    if args.perf:
        _print_perf(flow)
    return 0


def cmd_pack(args) -> int:
    """Compile circuits into mmap-able ``.rpk`` design packs."""
    from repro.cache import JsonCache
    from repro.core.sta_compiled import compile_design, design_cache_key
    from repro.errors import ReproError
    from repro.pack import pack_compiled_design, pack_library_characterization

    flow = _make_flow(args)
    out_dir = Path(args.output)
    print("Fitting models (cached) ...")
    try:
        models = flow.fit_models()
        cache = JsonCache(args.cache_dir)
        for name in args.circuits:
            circuit = _resolve_circuit(
                name, flow.tech, args.width, args.parasitic_seed
            )
            if circuit is None:
                return 2
            design = compile_design(circuit, models, cache=cache,
                                    perf=flow.perf)
            path = out_dir / f"{circuit.name}.rpk"
            pack_compiled_design(
                design, path,
                design_key=design_cache_key(circuit, models),
                perf=flow.perf,
            )
            print(f"Wrote {path} ({path.stat().st_size} bytes, "
                  f"{design.arcs.n_arcs} packed arc rows)")
        if args.library:
            charac = flow.characterize()
            path = out_dir / "library.rpk"
            pack_library_characterization(charac, path, perf=flow.perf)
            print(f"Wrote {path} ({path.stat().st_size} bytes, "
                  f"{len(charac)} arc tables)")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.perf:
        _print_perf(flow)
    return 0


def cmd_unpack(args) -> int:
    """Expand a ``.rpk`` pack into the equivalent plain-JSON document."""
    import json as _json

    from repro.errors import PackError
    from repro.pack import PackFile, delist_document

    try:
        pack = PackFile.open(args.file, verify=not args.no_verify)
    except PackError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 1
    text = _json.dumps(delist_document(pack.document()), sort_keys=True,
                       indent=2)
    if args.output and args.output != "-":
        Path(args.output).write_text(text + "\n")
        print(f"Wrote {args.output}")
    else:
        print(text)
    return 0


def cmd_inspect(args) -> int:
    """Print a pack's header, meta and segment table; verify digests."""
    from repro.errors import PackError
    from repro.pack import PackFile

    try:
        pack = PackFile.open(args.file, verify=False)
    except PackError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 1
    print(f"{args.file}: repro-pack v{pack.version} kind={pack.kind}")
    print(f"  identity {pack.identity()}  manifest sha256 "
          f"{pack.manifest_sha256[:16]}...")
    print(f"  {pack.nbytes} file bytes, {pack.tensor_nbytes} tensor bytes "
          f"in {len(pack.segments)} segment(s)")
    for key in sorted(pack.meta):
        print(f"  meta.{key} = {pack.meta[key]}")
    if pack.segments:
        print(f"  {'segment':<44} {'dtype':<6} {'shape':<16} {'bytes':>12}")
        for record in pack.segments:
            shape = "x".join(str(d) for d in record["shape"]) or "()"
            print(f"  {record['name']:<44} {record['dtype']:<6} "
                  f"{shape:<16} {record['nbytes']:>12}")
    try:
        pack.verify()
    except PackError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 1
    print(f"  digests OK ({len(pack.segments)} segment(s) verified)")
    return 0


def cmd_query(args) -> int:
    """Query a running STA service (see ``repro serve``)."""
    from repro.errors import ReproError
    from repro.serve import QueryRequest, ServeClient
    from repro.moments.stats import SIGMA_LEVELS

    try:
        client = ServeClient(socket_path=args.socket, host=args.host,
                             port=args.port, timeout=args.timeout)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        if args.stats:
            import json as _json
            print(_json.dumps(client.stats(), indent=2))
            return 0
        if args.designs:
            for name in client.designs():
                print(name)
            return 0
        if not args.design:
            print("error: give a design name, --stats or --designs",
                  file=sys.stderr)
            return 2

        slews = tuple(
            float(s) for s in args.slews.split(",") if s.strip()
        ) or (20.0,)
        edges = tuple(
            e.strip().lower() for e in args.edges.split(",") if e.strip()
        ) or ("rise",)
        levels = tuple(
            int(n) for n in args.levels.split(",") if n.strip()
        ) or SIGMA_LEVELS
        correlations: tuple = (None,)
        if args.correlations:
            correlations = tuple(
                None if token.strip() in ("fit", "none") else float(token)
                for token in args.correlations.split(",") if token.strip()
            ) or (None,)
        request = QueryRequest(
            design=args.design,
            slews_ps=slews,
            edges=edges,
            levels=levels,
            correlations=correlations,
            deadline_s=args.deadline,
        )
        response = client.query(request)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if not response.ok:
        print(f"error [{response.code}]: {response.error}", file=sys.stderr)
        for diag in response.diagnostics:
            print(f"  {diag}", file=sys.stderr)
        return 1
    print(f"{response.design} ({response.n_scenarios} scenario(s), "
          f"{response.served_s * 1e3:.1f} ms served)")
    for result in response.results:
        rho = "fit" if result.correlation is None else f"{result.correlation}"
        quantiles = "  ".join(
            f"{n:+d}s={q / PS:.1f}ps" for n, q in sorted(result.quantiles_s.items())
        )
        print(f"slew {result.slew_ps:6.1f} ps {result.edge:<4} rho={rho:<5} "
              f"-> {result.endpoint} ({result.n_stages} stages)  {quantiles}")
    return 0


def cmd_kernels(args) -> int:
    """Probe and list the kernel backends on this machine."""
    from repro.kernels import available_backends, default_backend

    selected = default_backend().name
    print(f"{'backend':<10} {'available':<10} detail")
    for entry in available_backends():
        marker = "*" if entry["name"] == selected else " "
        print(f"{marker}{entry['name']:<9} {entry['available']:<10} {entry['detail']}")
    print(f"\n* = selected by the current environment "
          f"($REPRO_KERNEL or the numpy default)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="N-sigma delay calibration (DATE 2023 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="characterize library cells")
    _add_flow_args(p)
    p.add_argument("-o", "--output", default="library_lvf.json",
                   help="output JSON path")
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("cells", help="list the synthetic cell library")
    p.add_argument("--vdd", type=float, default=0.6)
    p.set_defaults(func=cmd_cells)

    p = sub.add_parser("analyze", help="statistical STA on a circuit")
    _add_flow_args(p)
    p.add_argument("circuit",
                   help="ISCAS85 name (c432...), PULPino unit (ADD/SUB/MUL/DIV), "
                        "or a structural Verilog file")
    p.add_argument("--width", type=int, default=16,
                   help="operand width for PULPino units")
    p.add_argument("--input-slew", type=float, default=20.0,
                   help="primary-input slew in ps")
    p.add_argument("--parasitic-seed", type=int, default=1,
                   help="seed of the synthetic parasitics")
    p.add_argument("--max-stages", type=int, default=40,
                   help="truncate the path report after this many stages")
    p.add_argument("--batch", action="store_true",
                   help="use the compiled vectorized engine and evaluate the "
                        "scenario grid of --batch-slews x --batch-edges")
    p.add_argument("--batch-slews", default="",
                   help="comma-separated input slews in ps for --batch "
                        "(default: --input-slew only)")
    p.add_argument("--batch-edges", default="rise",
                   help="comma-separated launch edges (rise,fall) for --batch")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("serve", help="boot the resident STA query service")
    _add_flow_args(p)
    p.add_argument("circuits", nargs="+",
                   help="circuits to serve: ISCAS85 names, PULPino units "
                        "(ADD/SUB/MUL/DIV) or structural Verilog files")
    p.add_argument("--width", type=int, default=16,
                   help="operand width for PULPino units")
    p.add_argument("--parasitic-seed", type=int, default=1,
                   help="seed of the synthetic parasitics")
    p.add_argument("--socket", default=None,
                   help="unix-socket path to listen on (newline-JSON)")
    p.add_argument("--host", default=None,
                   help="HTTP listen host (e.g. 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="HTTP listen port (0 = ephemeral)")
    p.add_argument("--concurrency", type=int, default=4,
                   help="queries executing simultaneously")
    p.add_argument("--queue-depth", type=int, default=32,
                   help="admitted-but-waiting queries before rejecting busy")
    p.add_argument("--deadline", type=float, default=None,
                   help="default per-query deadline in seconds")
    p.add_argument("--lru-mb", type=float, default=None,
                   help="resident compiled-design budget in MiB "
                        "(default: unbounded)")
    p.add_argument("--max-scenarios", type=int, default=4096,
                   help="per-request scenario-grid ceiling")
    p.add_argument("--ready-file", default="",
                   help="write the bound endpoint here once listening "
                        "(for supervisors/CI); removed again on shutdown")
    p.add_argument("--pack", default="",
                   help="directory of <design>.rpk packs (see `repro pack`) "
                        "attached as mmap cold-load sources; stale or "
                        "corrupt packs are refused with a warning")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("pack",
                       help="compile circuits into mmap-able .rpk packs")
    _add_flow_args(p)
    p.add_argument("circuits", nargs="+",
                   help="circuits to pack: ISCAS85 names, PULPino units "
                        "(ADD/SUB/MUL/DIV) or structural Verilog files")
    p.add_argument("--width", type=int, default=16,
                   help="operand width for PULPino units")
    p.add_argument("--parasitic-seed", type=int, default=1,
                   help="seed of the synthetic parasitics")
    p.add_argument("-o", "--output", default="packs",
                   help="output directory for the <design>.rpk files")
    p.add_argument("--library", action="store_true",
                   help="also write the characterized library bundle "
                        "as library.rpk")
    p.set_defaults(func=cmd_pack)

    p = sub.add_parser("unpack",
                       help="expand a .rpk pack to its plain-JSON document")
    p.add_argument("file", help=".rpk pack path")
    p.add_argument("-o", "--output", default="-",
                   help="output JSON path (- = stdout)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the per-segment digest verification")
    p.set_defaults(func=cmd_unpack)

    p = sub.add_parser("inspect",
                       help="print a .rpk pack's manifest and verify digests")
    p.add_argument("file", help=".rpk pack path")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("query", help="query a running STA service")
    p.add_argument("design", nargs="?", default="",
                   help="registered design name to query")
    p.add_argument("--socket", default=None,
                   help="unix-socket endpoint of the server")
    p.add_argument("--host", default=None, help="HTTP host of the server")
    p.add_argument("--port", type=int, default=None,
                   help="HTTP port of the server")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="client socket timeout in seconds")
    p.add_argument("--slews", default="20",
                   help="comma-separated input slews in ps")
    p.add_argument("--edges", default="rise",
                   help="comma-separated launch edges (rise,fall)")
    p.add_argument("--levels", default="-3,-2,-1,0,1,2,3",
                   help="comma-separated sigma levels")
    p.add_argument("--correlations", default="",
                   help="comma-separated stage correlations in [0,1] "
                        "('fit' = the fitted value)")
    p.add_argument("--deadline", type=float, default=None,
                   help="per-request deadline in seconds")
    p.add_argument("--stats", action="store_true",
                   help="print the server's live counters and exit")
    p.add_argument("--designs", action="store_true",
                   help="list the registered designs and exit")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("kernels", help="probe the available kernel backends")
    p.set_defaults(func=cmd_kernels)

    p = sub.add_parser("lint", help="static checks on artifacts and source")
    p.add_argument("paths", nargs="*",
                   help="artifact files to lint (.spef, .v, .json); with "
                        "--deep, also source dirs / .py files")
    p.add_argument("--codebase", action="store_true",
                   help="also run the code rules over the repro package")
    p.add_argument("--deep", action="store_true",
                   help="run the dataflow rule families (DET/CKY/UNT/RES) "
                        "over source paths (default: the repro package)")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 on warnings too, not just errors")
    p.add_argument("--baseline", default="",
                   help="baseline file: only findings not in it fail the run")
    p.add_argument("--update-baseline", action="store_true",
                   help="accept all current findings into --baseline and exit")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="diagnostic output format")
    p.add_argument("--disable", default="",
                   help="comma-separated rule IDs to suppress")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point (returns a process exit code)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
