"""Nominal technology constants and variation magnitudes.

The numbers below describe a synthetic 28 nm-class bulk CMOS process.
They are not the (proprietary) TSMC values; they are chosen so that the
*mechanisms* the paper relies on are present with realistic magnitude:

* near-threshold operation at ``vdd = 0.6 V`` with ``|Vt0| = 0.35 V``,
  putting devices ~0.25 V above threshold where drive current is an
  exponential-ish function of Vth — the origin of the right-skewed,
  heavy-tailed delay distributions in the paper's Fig. 2;
* Pelgrom mismatch with ``A_vt`` of a few mV·µm, so wider (stronger)
  devices vary relatively less — the origin of Eq. (5);
* back-end-of-line wire parasitics of a few Ω/µm and ~0.2 fF/µm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.units import FF, NM, OHM, UM


@dataclass(frozen=True)
class Technology:
    """Nominal constants of the synthetic process.

    Attributes
    ----------
    vdd:
        Default supply voltage in volts. The paper evaluates at 0.6 V
        (near-threshold); :class:`Technology` is immutable, use
        :meth:`at_vdd` for voltage sweeps.
    temperature_c:
        Junction temperature in Celsius (paper: 25 °C).
    vt0_n / vt0_p:
        Nominal long-channel threshold voltages (PMOS value is the
        magnitude; the device model applies the sign).
    subthreshold_slope_factor:
        EKV slope factor ``n`` (dimensionless, typically 1.2–1.5).
    kp_n / kp_p:
        Transconductance prefactor ``µ·Cox`` in A/V² per square (W/L).
    dibl:
        Drain-induced barrier lowering coefficient (V/V): effective
        threshold drops by ``dibl * vds``.
    channel_length_modulation:
        Early-effect coefficient λ (1/V).
    l_min / w_unit:
        Minimum drawn channel length and the unit-strength NMOS width in
        meters. A cell of strength ``k`` uses ``k * w_unit`` wide NMOS.
    pn_ratio:
        PMOS/NMOS width ratio used by the cell templates to balance rise
        and fall drive.
    cg_per_width:
        Gate capacitance per meter of gate width (F/m); used for cell
        input-pin capacitance and loading.
    cd_per_width:
        Drain junction/overlap capacitance per meter of width (F/m);
        self-loading of cell outputs.
    wire_r_per_m / wire_c_per_m:
        Nominal interconnect resistance (Ω/m) and ground capacitance
        (F/m) for the synthetic parasitic generator.
    cap_vth_sensitivity:
        Relative sensitivity of a device's effective switching (gate /
        junction) capacitance to its threshold shift:
        ``cap_scale = length_scale * (1 - k * dvth / vt0)``. Models the
        inversion-charge dependence on Vth that couples receiver-cell
        variation into wire delay — the physical origin of the paper's
        load-cell term ``X_FO`` in Eq. (7).
    """

    vdd: float = 0.6
    temperature_c: float = 25.0
    vt0_n: float = 0.35
    vt0_p: float = 0.35
    subthreshold_slope_factor: float = 1.35
    kp_n: float = 220e-6  # repro-lint: disable=UNIT001 (A/V^2, no units constant)
    kp_p: float = 110e-6  # repro-lint: disable=UNIT001 (A/V^2, no units constant)
    dibl: float = 0.08
    channel_length_modulation: float = 0.08
    l_min: float = 30 * NM
    w_unit: float = 120 * NM
    pn_ratio: float = 1.6
    cg_per_width: float = 1.1 * FF / UM
    cd_per_width: float = 0.6 * FF / UM
    wire_r_per_m: float = 25.0 * OHM / UM
    wire_c_per_m: float = 0.10 * FF / UM
    cap_vth_sensitivity: float = 1.8

    def at_vdd(self, vdd: float) -> "Technology":
        """Return a copy of this technology operating at ``vdd`` volts."""
        from dataclasses import replace

        return replace(self, vdd=vdd)

    @property
    def unit_nmos_width(self) -> float:
        """Width in meters of a strength-1 NMOS device."""
        return self.w_unit

    @property
    def unit_pmos_width(self) -> float:
        """Width in meters of a strength-1 PMOS device."""
        return self.w_unit * self.pn_ratio

    def gate_cap(self, width: float) -> float:
        """Gate capacitance in farads of a device of the given width."""
        return self.cg_per_width * width

    def drain_cap(self, width: float) -> float:
        """Drain parasitic capacitance in farads of a device of the given width."""
        return self.cd_per_width * width


@dataclass(frozen=True)
class VariationModel:
    """Magnitudes of the statistical variation sources.

    Global (die-to-die) components are shared by every transistor in a
    Monte-Carlo sample; local (mismatch) components are independent per
    transistor with the Pelgrom area scaling.

    Attributes
    ----------
    sigma_vth_global:
        Sigma of the global threshold-voltage shift in volts (applied
        with opposite correlation sign conventions handled by the
        sampler: NMOS and PMOS global shifts are drawn separately with
        correlation ``global_np_correlation``).
    avt:
        Pelgrom coefficient in V·m (σ_Vth,local = avt / sqrt(W·L)).
    sigma_mobility_global / sigma_mobility_local:
        Relative (fractional) sigma of the mobility / transconductance
        prefactor.
    sigma_length_global:
        Relative sigma of the drawn channel length (affects W/L and the
        Pelgrom area).
    sigma_wire_r / sigma_wire_c:
        Relative sigma of per-segment interconnect R and C (BEOL
        variation), applied per RC segment with a global + local split
        controlled by ``wire_global_fraction``.
    global_np_correlation:
        Correlation coefficient between the NMOS and PMOS global Vth
        shifts (same wafer: positive, but imperfect).
    wire_global_fraction:
        Fraction of the wire R/C variance that is globally correlated.
    """

    sigma_vth_global: float = 0.030
    avt: float = 1.4e-3 * UM  # 1.4 mV*um in V*m
    sigma_mobility_global: float = 0.06
    sigma_mobility_local: float = 0.015
    sigma_length_global: float = 0.02
    sigma_wire_r: float = 0.03
    sigma_wire_c: float = 0.02
    global_np_correlation: float = 0.6
    wire_global_fraction: float = 0.5

    def scaled(self, factor: float) -> "VariationModel":
        """Return a copy with every sigma multiplied by ``factor``.

        Useful for ablations (e.g. "what if mismatch doubled?") and for
        tests that need nearly-deterministic behaviour.
        """
        from dataclasses import replace

        return replace(
            self,
            sigma_vth_global=self.sigma_vth_global * factor,
            avt=self.avt * factor,
            sigma_mobility_global=self.sigma_mobility_global * factor,
            sigma_mobility_local=self.sigma_mobility_local * factor,
            sigma_length_global=self.sigma_length_global * factor,
            sigma_wire_r=self.sigma_wire_r * factor,
            sigma_wire_c=self.sigma_wire_c * factor,
        )


#: Technology instance used throughout the examples and benchmarks.
DEFAULT_TECHNOLOGY = Technology()

#: Variation model used throughout the examples and benchmarks.
DEFAULT_VARIATION = VariationModel()
