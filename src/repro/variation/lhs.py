"""Latin-hypercube sampling of the process parameters.

Plain Monte-Carlo quantile estimates at ±3σ converge slowly; stratifying
the *global* variation axes (which dominate the delay variance in the
paper's setting) with a Latin hypercube cuts the variance of moment and
quantile estimates at equal sample count. Local mismatch stays i.i.d. —
stratifying thousands of per-device axes is useless and would distort
the Pelgrom averaging the models rely on.

Usage: construct :class:`LatinHypercubeSampler` anywhere a
:class:`~repro.variation.sampling.MonteCarloSampler` is accepted (it is
a drop-in subclass overriding :meth:`draw_globals`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats as sps

from repro.variation.parameters import VariationModel
from repro.variation.sampling import GlobalDraws, MonteCarloSampler


def latin_hypercube_unit(
    n_samples: int, n_axes: int, rng: np.random.Generator
) -> np.ndarray:
    """Stratified uniform draws on [0, 1), shape ``(n_samples, n_axes)``.

    Each axis is divided into ``n_samples`` equiprobable strata; one
    uniform draw lands in each stratum and axes are shuffled
    independently. The per-axis RNG consumption (one ``uniform`` batch,
    one ``shuffle``) is exactly that of :func:`latin_hypercube_normal`,
    so the two designs built from the same generator state coincide up
    to the inverse-CDF map.
    """
    if n_samples < 1 or n_axes < 1:
        raise ValueError("n_samples and n_axes must be >= 1")
    out = np.empty((n_samples, n_axes))
    for axis in range(n_axes):
        strata = (np.arange(n_samples) + rng.uniform(size=n_samples)) / n_samples
        rng.shuffle(strata)
        out[:, axis] = strata
    return out


def latin_hypercube_normal(
    n_samples: int, n_axes: int, rng: np.random.Generator
) -> np.ndarray:
    """Stratified standard-normal draws, shape ``(n_samples, n_axes)``.

    Each axis is divided into ``n_samples`` equiprobable strata; one
    uniform draw lands in each stratum, axes are shuffled independently,
    and the result is mapped through the normal inverse CDF.
    """
    return sps.norm.ppf(latin_hypercube_unit(n_samples, n_axes, rng))


class LatinHypercubeSampler(MonteCarloSampler):
    """Monte-Carlo sampler with Latin-hypercube stratified globals.

    The six global axes (N/P threshold, mobility, length, wire R, wire
    C) are stratified; everything else (per-device mismatch, per-segment
    wire locals) is sampled exactly as the plain sampler does.
    """

    def draw_globals(self, n_samples: int) -> GlobalDraws:
        """Stratified version of the global draws (same correlation model)."""
        z = latin_hypercube_normal(n_samples, 6, self.rng)
        rho = min(max(self.variation.global_np_correlation, 0.0), 1.0)
        load = np.sqrt(rho)
        tail = np.sqrt(1.0 - rho)
        # Axis 0 is the shared N/P factor; axes 1-2 the independent tails.
        z_n = load * z[:, 0] + tail * z[:, 1]
        z_p = load * z[:, 0] + tail * z[:, 2]
        return GlobalDraws(
            z_vth_n=z_n,
            z_vth_p=z_p,
            z_mobility=z[:, 3],
            z_length=z[:, 4],
            z_wire_r=z[:, 5],
            z_wire_c=self.rng.standard_normal(n_samples),
        )
