"""Monte-Carlo sampling of process parameters.

A :class:`MonteCarloSampler` turns a :class:`~repro.variation.parameters.VariationModel`
into batches of per-transistor parameter deviations. Each batch is a
:class:`ParameterSample` — a struct of ``(n_samples, n_transistors)``
arrays that the vectorized SPICE engine consumes directly.

Correlation structure
---------------------
* One global NMOS Vth shift and one global PMOS Vth shift per sample,
  correlated with coefficient ``global_np_correlation`` (same die, but
  N and P devices track imperfectly).
* One global mobility shift and one global length shift per sample,
  shared by all devices.
* Independent local (mismatch) Vth and mobility draws per transistor,
  Vth scaled per-device by the Pelgrom law.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.variation.parameters import VariationModel


@dataclass
class ParameterSample:
    """Per-transistor parameter deviations for a Monte-Carlo batch.

    All arrays have shape ``(n_samples, n_transistors)``.

    Attributes
    ----------
    dvth:
        Additive threshold-voltage shift in volts. For PMOS devices the
        shift applies to the threshold *magnitude* (positive shift →
        slower device), matching the NMOS sign convention so the device
        model can treat both uniformly.
    mobility_scale:
        Multiplicative factor on the transconductance prefactor
        (nominal = 1.0).
    length_scale:
        Multiplicative factor on the channel length (nominal = 1.0).
    """

    dvth: np.ndarray
    mobility_scale: np.ndarray
    length_scale: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo samples in the batch."""
        return self.dvth.shape[0]

    @property
    def n_transistors(self) -> int:
        """Number of transistors the batch parameterizes."""
        return self.dvth.shape[1]

    @classmethod
    def nominal(cls, n_samples: int, n_transistors: int) -> "ParameterSample":
        """A batch with every deviation at its nominal value (no variation)."""
        shape = (n_samples, n_transistors)
        return cls(
            dvth=np.zeros(shape),
            mobility_scale=np.ones(shape),
            length_scale=np.ones(shape),
        )

    def cap_scale(self, sensitivity: float, vt_ref: float) -> np.ndarray:
        """Per-device parasitic-capacitance scale factors.

        Effective switching (inversion + junction) charge shrinks as the
        threshold rises: ``length_scale * (1 - sensitivity * dvth / vt_ref)``,
        floored at 0.2 for physicality. This is what couples receiver-cell
        process variation into wire delay (the paper's ``X_FO`` effect).
        """
        scale = self.length_scale * (1.0 - sensitivity * self.dvth / vt_ref)
        return np.clip(scale, 0.2, None)

    def subset(self, sample_indices: np.ndarray) -> "ParameterSample":
        """Return the batch restricted to the given sample rows."""
        return ParameterSample(
            dvth=self.dvth[sample_indices],
            mobility_scale=self.mobility_scale[sample_indices],
            length_scale=self.length_scale[sample_indices],
        )


@dataclass
class GlobalDraws:
    """Standard-normal draws of the *global* variation components.

    When one Monte-Carlo experiment spans several separately-sampled
    sub-circuits (e.g. the stages of a critical path), the die-to-die
    components must be shared: draw one :class:`GlobalDraws` with
    :meth:`MonteCarloSampler.draw_globals` and pass it to every
    :meth:`MonteCarloSampler.sample` call for the path.
    """

    z_vth_n: np.ndarray
    z_vth_p: np.ndarray
    z_mobility: np.ndarray
    z_length: np.ndarray
    z_wire_r: np.ndarray
    z_wire_c: np.ndarray

    @property
    def n_samples(self) -> int:
        """Number of Monte-Carlo samples the draws cover."""
        return self.z_vth_n.shape[0]


class MonteCarloSampler:
    """Draws :class:`ParameterSample` batches for a set of transistors.

    Parameters
    ----------
    variation:
        Variation magnitudes; see :class:`~repro.variation.parameters.VariationModel`.
    seed:
        Seed for the internal :class:`numpy.random.Generator`. Passing
        the same seed reproduces the same stream of samples.
    """

    def __init__(self, variation: VariationModel, seed: Optional[int] = None):
        self.variation = variation
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The underlying random generator (exposed for wire sampling etc.)."""
        return self._rng

    def draw_globals(self, n_samples: int) -> GlobalDraws:
        """Draw the correlated global (die-to-die) components once.

        The NMOS/PMOS threshold draws carry the
        ``global_np_correlation`` structure; mobility, length and the
        wire R/C common factors are independent standard normals.
        """
        # One-factor model: loading sqrt(rho) on the shared factor gives
        # corr(z_n, z_p) = rho with unit marginal variance.
        rho = min(max(self.variation.global_np_correlation, 0.0), 1.0)
        z_common = self._rng.standard_normal(n_samples)
        load = np.sqrt(rho)
        tail = np.sqrt(1.0 - rho)
        z_n = load * z_common + tail * self._rng.standard_normal(n_samples)
        z_p = load * z_common + tail * self._rng.standard_normal(n_samples)
        return GlobalDraws(
            z_vth_n=z_n,
            z_vth_p=z_p,
            z_mobility=self._rng.standard_normal(n_samples),
            z_length=self._rng.standard_normal(n_samples),
            z_wire_r=self._rng.standard_normal(n_samples),
            z_wire_c=self._rng.standard_normal(n_samples),
        )

    def sample(
        self,
        sigma_vth_local: Sequence[float],
        is_pmos: Sequence[bool],
        n_samples: int,
        globals_: Optional[GlobalDraws] = None,
    ) -> ParameterSample:
        """Draw a Monte-Carlo batch.

        Parameters
        ----------
        sigma_vth_local:
            Per-transistor local Vth sigma in volts (from
            :func:`~repro.variation.pelgrom.pelgrom_sigma_vth`), length
            ``n_transistors``.
        is_pmos:
            Per-transistor device-type flags (True for PMOS), used to
            select the correlated global Vth shift.
        n_samples:
            Number of Monte-Carlo samples to draw.
        globals_:
            Pre-drawn global components (see :meth:`draw_globals`); when
            omitted, fresh globals are drawn for this batch. Pass the
            same object across batches to correlate the die-to-die
            variation of separately sampled sub-circuits.

        Returns
        -------
        ParameterSample
            Arrays of shape ``(n_samples, n_transistors)``.
        """
        sigma_local = np.asarray(sigma_vth_local, dtype=float)
        pmos_mask = np.asarray(is_pmos, dtype=bool)
        if sigma_local.ndim != 1:
            raise ValueError("sigma_vth_local must be one-dimensional")
        if pmos_mask.shape != sigma_local.shape:
            raise ValueError(
                f"is_pmos length {pmos_mask.shape} does not match "
                f"sigma_vth_local length {sigma_local.shape}"
            )
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        var = self.variation
        n_tr = sigma_local.shape[0]

        if globals_ is None:
            globals_ = self.draw_globals(n_samples)
        elif globals_.n_samples != n_samples:
            raise ValueError(
                f"globals_ covers {globals_.n_samples} samples, requested {n_samples}"
            )
        global_vth_n = var.sigma_vth_global * globals_.z_vth_n
        global_vth_p = var.sigma_vth_global * globals_.z_vth_p
        global_vth = np.where(pmos_mask[None, :], global_vth_p[:, None], global_vth_n[:, None])

        local_vth = self._rng.standard_normal((n_samples, n_tr)) * sigma_local[None, :]
        dvth = global_vth + local_vth

        mobility = (
            1.0
            + var.sigma_mobility_global * globals_.z_mobility[:, None]
            + var.sigma_mobility_local * self._rng.standard_normal((n_samples, n_tr))
        )
        length = 1.0 + var.sigma_length_global * globals_.z_length[:, None]
        length = np.broadcast_to(length, (n_samples, n_tr)).copy()

        # Physical floor: neither mobility nor length may go non-positive,
        # even at extreme sigmas. Clip at 10% of nominal.
        np.clip(mobility, 0.1, None, out=mobility)
        np.clip(length, 0.1, None, out=length)
        return ParameterSample(dvth=dvth, mobility_scale=mobility, length_scale=length)

    def sample_wire_scales(
        self,
        n_segments: int,
        n_samples: int,
        globals_: Optional[GlobalDraws] = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Draw multiplicative R and C scale factors for wire segments.

        Returns a pair of ``(n_samples, n_segments)`` arrays with mean 1.
        Variance is split between a globally-correlated component and an
        independent per-segment component per ``wire_global_fraction``.
        Pass ``globals_`` to share the common BEOL component across
        separately sampled nets (e.g. along a path).
        """
        if n_segments < 1:
            raise ValueError(f"n_segments must be >= 1, got {n_segments}")
        var = self.variation
        frac = var.wire_global_fraction
        g = np.sqrt(frac)
        l = np.sqrt(max(0.0, 1.0 - frac))
        if globals_ is None:
            globals_ = self.draw_globals(n_samples)
        elif globals_.n_samples != n_samples:
            raise ValueError(
                f"globals_ covers {globals_.n_samples} samples, requested {n_samples}"
            )

        def draw(sigma: float, common: np.ndarray) -> np.ndarray:
            local = self._rng.standard_normal((n_samples, n_segments))
            scale = 1.0 + sigma * (g * common[:, None] + l * local)
            return np.clip(scale, 0.1, None)

        return (
            draw(var.sigma_wire_r, globals_.z_wire_r),
            draw(var.sigma_wire_c, globals_.z_wire_c),
        )
