"""Pelgrom's mismatch law and its stacking corollary.

Pelgrom et al. (JSSC 1989) showed that the standard deviation of the
threshold-voltage mismatch between identically drawn MOS transistors
scales with the inverse square root of the gate area:

    sigma(ΔVth) = A_vt / sqrt(W · L)

The paper leans on two corollaries (its Eq. (5)):

* a cell of strength ``k`` uses ``k``-times wider devices, so its delay
  variability scales like ``1/sqrt(k)``;
* a cell whose switching path stacks ``n`` transistors averages ``n``
  independent mismatch draws, contributing another ``1/sqrt(n)``.
"""

from __future__ import annotations

import math


def pelgrom_sigma_vth(avt: float, width: float, length: float) -> float:
    """Local threshold mismatch sigma in volts for a ``width`` × ``length`` device.

    Parameters
    ----------
    avt:
        Pelgrom coefficient in V·m (e.g. ``2.2e-9`` for 2.2 mV·µm).
    width, length:
        Drawn dimensions in meters; both must be positive.
    """
    if width <= 0.0 or length <= 0.0:
        raise ValueError(f"device dimensions must be positive, got W={width}, L={length}")
    return avt / math.sqrt(width * length)


def stacked_variability_scale(n_stacked: int, strength: float) -> float:
    """Relative delay-variability scale of a cell, Eq. (5) of the paper.

    Returns ``1 / sqrt(n_stacked * strength)`` — the factor by which a
    cell's ``sigma/mu`` shrinks relative to a unit-strength, single-device
    reference as devices are stacked and widened.

    Parameters
    ----------
    n_stacked:
        Number of series transistors on the switching path (1 for an
        inverter, 2 for a NAND2 pull-down, ...).
    strength:
        Drive-strength multiplier (the ``x1``/``x4``/``x8`` suffix).
    """
    if n_stacked < 1:
        raise ValueError(f"stack count must be >= 1, got {n_stacked}")
    if strength <= 0.0:
        raise ValueError(f"strength must be positive, got {strength}")
    return 1.0 / math.sqrt(n_stacked * strength)
