"""Process-variation substrate.

This package models the manufacturing variability that the paper's TSMC
28 nm PDK supplied: a *global* (die-to-die) component shared by every
device in a sample, and a *local* (within-die, mismatch) component drawn
independently per transistor with a Pelgrom area law.

Public API
----------
:class:`~repro.variation.parameters.Technology`
    Nominal device and interconnect constants for the synthetic process.
:class:`~repro.variation.parameters.VariationModel`
    Sigmas of the global and local variation sources.
:class:`~repro.variation.sampling.MonteCarloSampler`
    Draws :class:`~repro.variation.sampling.ParameterSample` batches.
:func:`~repro.variation.pelgrom.pelgrom_sigma_vth`
    The Pelgrom mismatch law used for per-device threshold sigma.
"""

from repro.variation.parameters import Technology, VariationModel
from repro.variation.pelgrom import pelgrom_sigma_vth, stacked_variability_scale
from repro.variation.sampling import GlobalDraws, MonteCarloSampler, ParameterSample
from repro.variation.lhs import LatinHypercubeSampler

__all__ = [
    "Technology",
    "VariationModel",
    "MonteCarloSampler",
    "LatinHypercubeSampler",
    "ParameterSample",
    "GlobalDraws",
    "pelgrom_sigma_vth",
    "stacked_variability_scale",
]
