"""End-to-end delay-calibration flow (the paper's Fig. 5 pipeline).

:class:`DelayCalibrationFlow` wires the whole stack together:

1. **Characterize** the cell library with Monte-Carlo (moments +
   empirical quantiles per arc over the slew×load grid);
2. **Fit** the models: per-arc Eq. (2)/(3) moment calibrations, the
   Table I N-sigma quantile regression (library-wide), and the Eq. (7)
   wire variability weights from wire Monte-Carlo sweeps;
3. **Analyze** circuits with the statistical STA (Eq. 10).

Characterization is by far the expensive step, so the flow caches its
artifacts as JSON in ``cache_dir``, keyed by a hash of every knob that
affects the data (technology, variation, seeds, grids, sample counts).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache import JsonCache
from repro.cells.characterize import (
    DEFAULT_LOADS,
    DEFAULT_SLEWS,
    ArcCharacterizer,
    LibraryCharacterization,
    characterize_library,
)
from repro.perf import PerfCounters
from repro.cells.library import CellLibrary, build_default_library
from repro.cells.liberty import (
    load_library_characterization,
    save_library_characterization,
)
from repro.core.calibration import CalibratedCellLibrary
from repro.core.nsigma_cell import NSigmaCellModel
from repro.core.nsigma_wire import WireVariabilityModel, fit_wire_model
from repro.core.sta import STAResult, StatisticalSTA, TimingModels
from repro.interconnect.generate import NetGenerator
from repro.moments.stats import SIGMA_LEVELS, Moments
from repro.netlist.circuit import Circuit
from repro.units import PS, UM
from repro.variation.parameters import Technology, VariationModel

#: Default driver/load sweep used for wire-model fitting (FO1–FO8).
DEFAULT_WIRE_CELLS = ("INVx1", "INVx2", "INVx4", "INVx8")


class DelayCalibrationFlow:
    """Characterize → calibrate → analyze, with on-disk caching.

    Parameters
    ----------
    tech / variation:
        Process description (defaults: the synthetic 28 nm-class setup).
    seed:
        Master seed; characterization, wire fitting and parasitic
        generation derive their seeds from it.
    cache_dir:
        Directory for characterization/model JSON caches (None disables
        caching).
    n_samples:
        Monte-Carlo samples per characterization point.
    slews / loads:
        Characterization grid.
    wire_fit_samples / wire_fit_trees:
        Fidelity of the Eq. (7) wire-weight calibration.
    nsigma_fit_samples:
        When larger than ``n_samples``, the Table I regression is
        trained on a dedicated high-sample dataset (a few operating
        conditions per cell simulated at this count) instead of the
        full characterization grid. The ±3σ regression targets are
        extreme order statistics whose noise scales badly with low
        sample counts; a small deep dataset beats a large shallow one
        for this fit.
    cell_names:
        Library subset to characterize (None = full library; the
        default covers every type at pin A, falling arc).
    workers:
        Process-pool width for the characterization fan-out (None reads
        the ``REPRO_WORKERS`` env var; 1 = serial, no pool). Results are
        bit-identical for any value.
    max_retries / task_timeout:
        Fault-tolerance knobs of the characterization fan-out: extra
        attempts per grid point and an optional per-attempt wall-clock
        budget in seconds (see :class:`repro.parallel.RetryPolicy`).
        Retries reuse each point's derived seed, so results stay
        bit-identical whether or not a retry happened.
    quarantine_budget:
        How many quarantined arcs a characterization run tolerates
        before failing (0 = fail on any, ``None`` = never fail on
        quarantine alone). Quarantined arcs are always surfaced in the
        run report and journal via lint rule RUN001.
    resume:
        Consult per-arc checkpoints in ``cache_dir`` (default). With
        ``False`` every arc is recomputed; checkpoints are still
        rewritten as arcs finish.
    journal:
        Optional run journal: a :class:`repro.journal.RunJournal`, or a
        path to create one at. Receives run/task/checkpoint/quarantine
        events and perf snapshots (JSONL; lint with ``repro lint``).
    kernel:
        Numeric kernel backend for the transient solver (``"numpy"``,
        ``"fused"``, ``"cnative"``, ``"numba"`` or ``"auto"``; see
        :func:`repro.kernels.select_backend`). ``None`` reads the
        ``REPRO_KERNEL`` env var, defaulting to the golden ``numpy``
        reference. The choice travels to worker processes and is part
        of every cache key.
    surrogate:
        Active-learning surrogate characterization
        (:mod:`repro.surrogate`): a
        :class:`~repro.surrogate.SurrogateConfig`, a mode string
        (``"gp"`` / ``"off"``), or ``None`` to read the
        ``REPRO_SURROGATE`` env var (unset = dense, the default). When
        enabled, its configuration is salted into every cache key; when
        off, keys are bit-identical to pre-surrogate releases.

    Attributes
    ----------
    perf:
        :class:`~repro.perf.PerfCounters` with per-stage wall times
        (``characterize`` / ``fit_models`` / ``analyze``); solver-level
        counters accumulate on ``engine.perf`` — see :meth:`perf_report`
        for the merged view.
    """

    def __init__(
        self,
        tech: Optional[Technology] = None,
        variation: Optional[VariationModel] = None,
        seed: int = 0,
        cache_dir: Optional[str] = None,
        n_samples: int = 2000,
        slews: Sequence[float] = DEFAULT_SLEWS,
        loads: Sequence[float] = DEFAULT_LOADS,
        wire_fit_samples: int = 600,
        wire_fit_trees: int = 2,
        cell_names: Optional[Sequence[str]] = None,
        both_edges: bool = True,
        nsigma_fit_samples: int = 0,
        workers: Optional[int] = None,
        max_retries: int = 0,
        task_timeout: Optional[float] = None,
        quarantine_budget: Optional[int] = 0,
        resume: bool = True,
        journal=None,
        kernel: Optional[str] = None,
        surrogate=None,
    ):
        from repro.journal import RunJournal
        from repro.spice.montecarlo import MonteCarloEngine
        from repro.surrogate import resolve_surrogate

        self.tech = tech or Technology()
        self.variation = variation or VariationModel()
        self.seed = seed
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.n_samples = n_samples
        self.slews = tuple(slews)
        self.loads = tuple(loads)
        self.wire_fit_samples = wire_fit_samples
        self.wire_fit_trees = wire_fit_trees
        self.library = build_default_library(self.tech)
        self.cell_names = list(cell_names) if cell_names else self.library.names
        self.both_edges = both_edges
        self.nsigma_fit_samples = nsigma_fit_samples
        self.workers = workers
        self.max_retries = max_retries
        self.task_timeout = task_timeout
        self.quarantine_budget = quarantine_budget
        self.resume = resume
        self.kernel = kernel
        self.surrogate = resolve_surrogate(surrogate)
        self.engine = MonteCarloEngine(
            self.tech, self.variation, seed=self.seed, kernel=self.kernel
        )
        self.perf = PerfCounters()
        if journal is not None and not isinstance(journal, RunJournal):
            journal = RunJournal(journal)
        self.journal: Optional[RunJournal] = journal

        self._charac: Optional[LibraryCharacterization] = None
        self._models: Optional[TimingModels] = None

    # ------------------------------------------------------------------
    # Caching
    # ------------------------------------------------------------------
    def _cache_key(self) -> str:
        from repro import __version__
        from repro.kernels import backend_identity

        doc = {
            "repro_version": __version__,
            "kernel": backend_identity(self.kernel),
            "variation_model": type(self.variation).__qualname__,
            "tech": asdict(self.tech),
            "variation": asdict(self.variation),
            "seed": self.seed,
            "n_samples": self.n_samples,
            "slews": self.slews,
            "loads": self.loads,
            "cells": self.cell_names,
            "both_edges": self.both_edges,
            "wire_fit": [self.wire_fit_samples, self.wire_fit_trees],
        }
        # Salted in only when enabled: dense-mode keys must stay
        # bit-identical to pre-surrogate releases.
        if self.surrogate is not None:
            doc["surrogate"] = self.surrogate.identity()
        payload = json.dumps(doc, sort_keys=True)
        return hashlib.md5(payload.encode()).hexdigest()[:16]

    def _cache_path(self, kind: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        key = self._cache_key()
        if kind == "models" and self.nsigma_fit_samples:
            key = f"{key}_n{self.nsigma_fit_samples}"
        return self.cache_dir / f"{kind}_{key}.json"

    # ------------------------------------------------------------------
    def perf_report(self) -> PerfCounters:
        """Merged performance counters: stage wall times + solver work."""
        merged = PerfCounters()
        merged.merge(self.engine.perf)
        merged.merge(self.perf)
        return merged

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------
    def characterize(self) -> LibraryCharacterization:
        """Run (or load cached) library characterization.

        Fault-tolerant: per-arc checkpoints land in ``cache_dir`` as
        arcs finish, so an interrupted run resumed with the same knobs
        is bit-identical to an uninterrupted one; arcs that fail after
        ``max_retries`` are quarantined (journal + RUN001 lint) and the
        run fails only when ``quarantine_budget`` is exceeded.
        """
        if self._charac is not None:
            return self._charac
        path = self._cache_path("charac")
        if path is not None and path.exists() and self.resume:
            self._charac = load_library_characterization(path)
            self._lint_charac(self._charac)
            return self._charac
        characterizer = ArcCharacterizer(self.engine)
        arc_cache = (
            JsonCache(self.cache_dir, perf=self.perf)
            if self.cache_dir is not None else None
        )
        if self.journal is not None:
            self.journal.run_start(
                command="characterize", key=self._cache_key(),
                seed=self.seed, n_samples=self.n_samples,
                cells=list(self.cell_names), workers=self.workers,
                max_retries=self.max_retries, task_timeout=self.task_timeout,
                quarantine_budget=self.quarantine_budget, resume=self.resume,
                surrogate=(
                    self.surrogate.identity()
                    if self.surrogate is not None else None
                ),
            )
        try:
            with self.perf.timer("characterize"):
                self._charac = characterize_library(
                    characterizer,
                    self.library,
                    cells=self.cell_names,
                    slews=self.slews,
                    loads=self.loads,
                    n_samples=self.n_samples,
                    both_edges=self.both_edges,
                    workers=self.workers,
                    cache=arc_cache,
                    resume=self.resume,
                    max_retries=self.max_retries,
                    task_timeout=self.task_timeout,
                    quarantine_budget=self.quarantine_budget,
                    journal=self.journal,
                    surrogate=self.surrogate,
                )
        except BaseException as exc:
            if self.journal is not None:
                self.journal.run_finish(
                    status="error", error_type=type(exc).__name__,
                    message=str(exc),
                )
            raise
        if path is not None:
            save_library_characterization(self._charac, path)
        self._lint_charac(self._charac)
        if self.journal is not None:
            self.journal.perf_snapshot(self.perf_report(), stage="characterize")
            self.journal.run_finish(
                status="ok", arcs=len(self._charac),
                quarantined=len(self._charac.quarantined),
            )
        return self._charac

    @staticmethod
    def _lint_charac(charac: LibraryCharacterization) -> None:
        """Fail fast when characterization tables violate lint invariants."""
        from repro.errors import CharacterizationError
        from repro.lint import lint_characterization

        lint_characterization(charac).raise_if_errors(
            CharacterizationError, context="library characterization"
        )

    def fit_models(self) -> TimingModels:
        """Fit all models (cached as one JSON bundle)."""
        if self._models is not None:
            return self._models
        charac = self.characterize()
        with self.perf.timer("fit_models"):
            calibrated = CalibratedCellLibrary.fit(charac)

            path = self._cache_path("models")
            if path is not None and path.exists():
                with path.open() as fh:
                    doc = json.load(fh)
                nsigma = NSigmaCellModel.from_dict(doc["nsigma"])
                wire = WireVariabilityModel.from_dict(doc["wire"])
                stage_rho = float(doc.get("stage_correlation", 1.0))
            else:
                from repro.core.correlation import estimate_stage_correlation

                nsigma = self._fit_nsigma(charac)
                wire = self._fit_wire(calibrated)
                stage_rho = estimate_stage_correlation(
                    self.engine, self.library,
                    n_samples=max(600, self.n_samples))
                if path is not None:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    with path.open("w") as fh:
                        json.dump(
                            {
                                "nsigma": nsigma.to_dict(),
                                "wire": wire.to_dict(),
                                "stage_correlation": stage_rho,
                            },
                            fh,
                        )
        from repro.errors import CalibrationError
        from repro.lint import lint_nsigma_model

        lint_nsigma_model(nsigma).raise_if_errors(
            CalibrationError, context="fitted N-sigma model"
        )
        self._models = TimingModels(
            tech=self.tech,
            library=self.library,
            calibrated=calibrated,
            nsigma=nsigma,
            wire=wire,
            stage_correlation=stage_rho,
        )
        return self._models

    def _fit_nsigma(self, charac: LibraryCharacterization) -> NSigmaCellModel:
        if self.nsigma_fit_samples > self.n_samples:
            return self._fit_nsigma_deep()
        moments: List[Moments] = []
        quantiles: List[Dict[int, float]] = []
        for table in charac.tables.values():
            n_s, n_c, _ = table.moments.shape
            for i in range(n_s):
                for j in range(n_c):
                    mu, sigma, skew, kurt = table.moments[i, j]
                    moments.append(
                        Moments(mu, sigma, skew, kurt, n=table.n_samples)
                    )
                    quantiles.append(
                        {
                            lvl: float(table.quantiles[i, j, k])
                            for k, lvl in enumerate(SIGMA_LEVELS)
                        }
                    )
        return NSigmaCellModel.fit(moments, quantiles)

    def _fit_nsigma_deep(self) -> NSigmaCellModel:
        """Train Table I on a few deep Monte-Carlo populations per cell.

        The ±3σ regression targets are the 0.135 %/99.865 % order
        statistics: at the (broad, shallow) characterization-grid sample
        count they are noise-dominated, so a dedicated dataset — three
        operating conditions per cell at ``nsigma_fit_samples`` — gives
        the fit cleaner targets at modest extra cost.
        """
        from repro.cells.characterize import (
            REFERENCE_LOAD,
            REFERENCE_SLEW,
            ArcCharacterizer,
            fanout_load,
        )
        from repro.moments.stats import empirical_sigma_quantiles

        characterizer = ArcCharacterizer(self.engine)
        moments: List[Moments] = []
        quantiles: List[Dict[int, float]] = []
        mid_slew = self.slews[len(self.slews) // 2]
        mid_load = self.loads[len(self.loads) // 2]
        for name in self.cell_names:
            cell = self.library.get(name)
            conditions = [
                (REFERENCE_SLEW, REFERENCE_LOAD),
                (mid_slew, mid_load),
                (20 * PS, fanout_load(cell, self.tech)),
            ]
            for edge in ((False, True) if self.both_edges else (False,)):
                for slew, load in conditions:
                    res = characterizer.simulate_arc(
                        cell, "A", slew, load, self.nsigma_fit_samples,
                        output_rising=edge)
                    d = res.delay[res.valid]
                    moments.append(Moments.from_samples(d))
                    quantiles.append(empirical_sigma_quantiles(d))
        return NSigmaCellModel.fit(moments, quantiles)

    def _fit_wire(self, calibrated: CalibratedCellLibrary) -> WireVariabilityModel:
        gen = NetGenerator(self.tech, seed=self.seed + 101)
        trees = [
            gen.random_net(mean_length=50 * UM, max_branches=1)
            for _ in range(self.wire_fit_trees)
        ]
        model, _ = fit_wire_model(
            self.engine,
            self.library,
            calibrated,
            trees,
            driver_names=DEFAULT_WIRE_CELLS,
            load_names=DEFAULT_WIRE_CELLS,
            n_samples=self.wire_fit_samples,
        )
        return model

    # ------------------------------------------------------------------
    def analyze(
        self,
        circuit: Circuit,
        input_slew: float = 20 * PS,
        levels: Iterable[int] = SIGMA_LEVELS,
    ) -> STAResult:
        """Run the statistical STA on a parasitic-annotated circuit."""
        models = self.fit_models()
        with self.perf.timer("analyze"):
            sta = StatisticalSTA(circuit, models, input_slew=input_slew)
            return sta.analyze(levels)
