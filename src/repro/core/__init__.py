"""The paper's contribution: N-sigma delay models and the calibrated STA flow.

* :mod:`repro.core.nsigma_cell` — Table I: sigma-level quantiles of the
  cell delay as linear functions of the first four moments with
  ``σγ / σκ / γκ`` interaction terms, coefficients fitted by regression;
* :mod:`repro.core.calibration` — Eqs. (1)–(3): parametric calibration
  of the moments from the reference operating condition to arbitrary
  (input slew, output load);
* :mod:`repro.core.nsigma_wire` — Eqs. (5)–(9): wire delay variability
  from driver/load cell coefficients on top of the Elmore mean;
* :mod:`repro.core.sta` — Eq. (10): the statistical STA engine that
  propagates slews/loads and sums per-sigma-level cell and wire
  quantiles along paths;
* :mod:`repro.core.sta_compiled` — the compiled, levelized, vectorized
  form of the same engine: one compile per (circuit, calibration) pair,
  then batched scenario queries over packed arc tensors;
* :mod:`repro.core.flow` — the end-to-end characterize → calibrate →
  analyze pipeline with on-disk caching.
"""

from repro.core.nsigma_cell import NSigmaCellModel, QUANTILE_FEATURES
from repro.core.calibration import (
    ArcCalibration,
    ArcTensorBank,
    CalibratedCellLibrary,
    fit_arc_calibration,
)
from repro.core.nsigma_wire import WireVariabilityModel, cell_variability_ratio
from repro.core.sta import PathStage, PathTiming, StatisticalSTA, TimingModels
from repro.core.sta_compiled import (
    BatchSTAResult,
    CompiledDesign,
    CompiledSTA,
    Scenario,
    compile_design,
)
from repro.core.flow import DelayCalibrationFlow
from repro.core.report import (
    format_comparison,
    format_path_report,
    format_stage_budget,
)
from repro.core.correlation import estimate_stage_correlation

__all__ = [
    "NSigmaCellModel",
    "QUANTILE_FEATURES",
    "ArcCalibration",
    "ArcTensorBank",
    "CalibratedCellLibrary",
    "fit_arc_calibration",
    "WireVariabilityModel",
    "cell_variability_ratio",
    "StatisticalSTA",
    "TimingModels",
    "PathStage",
    "PathTiming",
    "BatchSTAResult",
    "CompiledDesign",
    "CompiledSTA",
    "Scenario",
    "compile_design",
    "DelayCalibrationFlow",
    "format_path_report",
    "format_comparison",
    "format_stage_budget",
    "estimate_stage_correlation",
]
