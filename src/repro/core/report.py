"""Human-readable timing reports.

Formats :class:`~repro.core.sta.STAResult` / :class:`~repro.core.sta.PathTiming`
objects in the style of a sign-off timer's path report, plus a
comparison table against a golden Monte-Carlo run. Pure formatting —
no computation — so examples, the CLI and notebooks can share one
faithful presentation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.sta import PathTiming, STAResult
from repro.moments.stats import SIGMA_LEVELS
from repro.units import FF, PS


def format_path_report(result: STAResult, max_stages: Optional[int] = None) -> str:
    """A timer-style critical-path report.

    Parameters
    ----------
    max_stages:
        Truncate long paths after this many stages (None = all).
    """
    path = result.critical_path
    lines = [
        f"Startpoint/Endpoint report — {result.circuit_name}",
        f"critical path: {path.n_cells} cells, "
        f"mean delay {path.total(0) / PS:.2f} ps "
        f"(cells {path.cell_total / PS:.2f} + wires {path.wire_total / PS:.2f})",
        "",
        f"{'#':>3} {'instance':<14} {'cell':<9} {'edge':<4} {'slew(ps)':>8} "
        f"{'load(fF)':>8} {'cell(ps)':>9} {'wire(ps)':>9} {'arrival':>9}",
    ]
    arrival = 0.0
    stages = path.stages if max_stages is None else path.stages[:max_stages]
    for k, stage in enumerate(stages):
        cell_d = stage.cell_quantiles.get(0, 0.0)
        wire_d = stage.wire_quantiles.get(0, 0.0)
        arrival += cell_d + wire_d
        name = stage.gate or "(launch)"
        cell = stage.cell_name or "-"
        edge = "rise" if stage.output_rising else "fall"
        lines.append(
            f"{k:>3} {name:<14} {cell:<9} {edge:<4} "
            f"{stage.input_slew / PS:>8.1f} {stage.load / FF:>8.2f} "
            f"{cell_d / PS:>9.2f} {wire_d / PS:>9.2f} {arrival / PS:>9.2f}"
        )
    if max_stages is not None and len(path.stages) > max_stages:
        lines.append(f"    ... {len(path.stages) - max_stages} more stages")
    lines.append("")
    lines.append("sigma-level path delays (Eq. 10):")
    for level in path.levels:
        lines.append(f"  {level:+d}σ : {path.total(level) / PS:10.2f} ps")
    lines.append(f"analysis runtime: {result.runtime_s:.4f} s")
    return "\n".join(lines)


def format_comparison(
    model: PathTiming,
    golden_quantiles: Dict[int, float],
    levels: Iterable[int] = SIGMA_LEVELS,
    golden_label: str = "Monte-Carlo",
) -> str:
    """Model-vs-golden quantile table with relative errors."""
    lines = [
        f"{'level':>6} {'model(ps)':>11} {f'{golden_label}(ps)':>15} {'error':>8}",
    ]
    for level in levels:
        if level not in golden_quantiles:
            continue
        m = model.total(level)
        g = golden_quantiles[level]
        err = (m - g) / g if g else float("nan")
        lines.append(
            f"{level:+6d} {m / PS:>11.2f} {g / PS:>15.2f} {err:>+8.1%}"
        )
    return "\n".join(lines)


def format_stage_budget(path: PathTiming, top: int = 5) -> str:
    """The ``top`` slowest stages with their share of the path mean."""
    total = path.total(0)
    if total <= 0:
        return "path has zero mean delay"
    cells = [s for s in path.stages if s.cell_name]
    ranked = sorted(
        cells,
        key=lambda s: s.cell_quantiles.get(0, 0.0) + s.wire_quantiles.get(0, 0.0),
        reverse=True,
    )[:top]
    lines = [f"top {len(ranked)} stages by mean delay:"]
    for s in ranked:
        d = s.cell_quantiles.get(0, 0.0) + s.wire_quantiles.get(0, 0.0)
        lines.append(
            f"  {s.gate:<14} {s.cell_name:<9} {d / PS:8.2f} ps "
            f"({d / total:5.1%} of path)"
        )
    return "\n".join(lines)
