"""The N-sigma cell delay model (Table I of the paper).

Each sigma-level quantile of the (non-Gaussian) cell delay distribution
is expressed as the Gaussian term ``mu + n*sigma`` plus a small number
of moment-interaction corrections:

=============  ======================================================
sigma level    correction features
=============  ======================================================
``-3sigma``    ``B30*sigma*kurt + B31*skew*kurt``
``-2sigma``    ``B20*sigma*skew + B21*sigma*kurt + B22*skew*kurt``
``-1sigma``    ``B10*sigma*skew + B11*skew*kurt``
``0sigma``     ``A00*sigma*skew + A01*skew*kurt``
``+1sigma``    ``A10*sigma*skew + A11*skew*kurt``
``+2sigma``    ``A20*sigma*skew + A21*sigma*kurt + A22*skew*kurt``
``+3sigma``    ``A30*sigma*kurt + A31*skew*kurt``
=============  ======================================================

Skewness mostly displaces the inner quantiles (hence the ``σγ`` terms
between −2σ and +2σ), kurtosis the tails (hence ``σκ`` at ±2σ/±3σ), and
the ``γκ`` cross term appears everywhere — exactly the Table I layout.

One subtlety the paper glosses over: the ``γκ`` product is
dimensionless, so a correction *in seconds* needs a time scale. We use
``sigma * skew * kurt`` for that column (the natural scale-carrying
choice); with the paper's per-library regression both concretizations
fit equally well, and ours keeps the model scale-invariant (tested in
``tests/core/test_nsigma_cell.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError
from repro.moments.regression import fit_linear
from repro.moments.stats import SIGMA_LEVELS, Moments

#: Feature names per sigma level, mirroring Table I. ``sg`` = sigma*skew,
#: ``sk`` = sigma*kurt_excess, ``gk`` = sigma*skew*kurt_excess.
QUANTILE_FEATURES: Dict[int, Tuple[str, ...]] = {
    -3: ("sk", "gk"),
    -2: ("sg", "sk", "gk"),
    -1: ("sg", "gk"),
    0: ("sg", "gk"),
    1: ("sg", "gk"),
    2: ("sg", "sk", "gk"),
    3: ("sk", "gk"),
}


def _feature_values(m: Moments) -> Dict[str, float]:
    # Excess kurtosis so that a perfect Gaussian produces zero correction
    # (Table I must reduce to mu + n*sigma for skew=0, kurt=3).
    ke = m.kurt - 3.0
    return {
        "sg": m.sigma * m.skew,
        "sk": m.sigma * ke,
        "gk": m.sigma * m.skew * ke,
    }


@dataclass
class NSigmaCellModel:
    """Fitted Table I coefficients mapping moments to sigma-level quantiles.

    Attributes
    ----------
    coefficients:
        Sigma level → coefficient vector (aligned with
        :data:`QUANTILE_FEATURES` of that level).
    fit_rms:
        Sigma level → training RMS residual in seconds (diagnostics).
    """

    coefficients: Dict[int, np.ndarray] = field(default_factory=dict)
    fit_rms: Dict[int, float] = field(default_factory=dict)

    @classmethod
    def fit(
        cls,
        moments: Sequence[Moments],
        quantiles: Sequence[Mapping[int, float]],
        ridge: float = 1e-9,  # repro-lint: disable=UNIT001 (damping, unitless)
    ) -> "NSigmaCellModel":
        """Fit the coefficients by linear regression (the paper's MATLAB step).

        Parameters
        ----------
        moments:
            One :class:`~repro.moments.stats.Moments` per observation —
            typically every (cell, pin, slew, load) grid point of a
            library characterization.
        quantiles:
            Matching empirical sigma-level quantiles (from Monte-Carlo),
            each a mapping ``level -> seconds``.
        ridge:
            Damping for nearly collinear feature columns.
        """
        if len(moments) != len(quantiles):
            raise CalibrationError(
                f"{len(moments)} moment sets vs {len(quantiles)} quantile sets"
            )
        if len(moments) < 8:
            raise CalibrationError("need at least 8 observations to fit Table I")
        model = cls()
        feats = [_feature_values(m) for m in moments]
        for level in SIGMA_LEVELS:
            names = QUANTILE_FEATURES[level]
            x = np.array([[f[n] for n in names] for f in feats])
            y = np.array(
                [q[level] - (m.mu + level * m.sigma) for m, q in zip(moments, quantiles)]
            )
            fit = fit_linear(x, y, ridge=ridge)
            model.coefficients[level] = fit.coef
            model.fit_rms[level] = fit.residual_rms
        return model

    def quantile(self, m: Moments, level: int) -> float:
        """Predict the sigma-level quantile for the given moments (Table I row)."""
        if level not in self.coefficients:
            raise CalibrationError(
                f"no coefficients for sigma level {level}; fitted: "
                f"{sorted(self.coefficients)}"
            )
        f = _feature_values(m)
        names = QUANTILE_FEATURES[level]
        correction = float(
            np.dot(self.coefficients[level], [f[n] for n in names])
        )
        return m.mu + level * m.sigma + correction

    def quantiles(self, m: Moments, levels: Iterable[int] = SIGMA_LEVELS) -> Dict[int, float]:
        """All requested sigma-level quantiles at once."""
        return {n: self.quantile(m, n) for n in levels}

    def quantile_array(
        self,
        mu: np.ndarray,
        sigma: np.ndarray,
        skew: np.ndarray,
        kurt: np.ndarray,
        level: int,
    ) -> np.ndarray:
        """Vectorized Table I row over arrays of moments.

        Element ``i`` equals ``quantile(Moments(mu[i], sigma[i], skew[i],
        kurt[i]), level)`` — the same feature products and the same
        left-to-right coefficient sum, evaluated for every observation
        at once. The compiled STA engine uses this to price all path
        stages (or all scenarios) in one sweep.
        """
        if level not in self.coefficients:
            raise CalibrationError(
                f"no coefficients for sigma level {level}; fitted: "
                f"{sorted(self.coefficients)}"
            )
        ke = kurt - 3.0
        feats = {
            "sg": sigma * skew,
            "sk": sigma * ke,
            "gk": sigma * skew * ke,
        }
        coef = self.coefficients[level]
        correction = np.zeros(np.broadcast(mu, sigma).shape)
        for c, name in zip(coef, QUANTILE_FEATURES[level]):
            correction = correction + c * feats[name]
        return mu + level * sigma + correction

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "coefficients": {str(k): v.tolist() for k, v in self.coefficients.items()},
            "fit_rms": {str(k): v for k, v in self.fit_rms.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NSigmaCellModel":
        """Inverse of :meth:`to_dict`."""
        return cls(
            coefficients={int(k): np.asarray(v) for k, v in data["coefficients"].items()},
            fit_rms={int(k): float(v) for k, v in data.get("fit_rms", {}).items()},
        )
