"""Operating-condition calibration of cell moments (Eqs. 1–3).

A cell's delay moments are characterized once at the reference condition
``(S_ref = 10 ps, C_ref = 0.4 fF)``; this module fits the parametric
correction that moves them to any (input slew ``S``, output load ``C``):

* Eq. (2) — ``mu`` and ``sigma`` are *bilinear* in ``(ΔS, ΔC)`` with the
  ``ΔS·ΔC`` cross term (Fig. 4 shows them near-linear in both knobs);
* Eq. (3) — ``skew`` and ``kurt`` need the *cubic* form
  ``P·[ΔS,ΔC] + Q·[ΔS²,ΔC²] + R·[ΔS³,ΔC³] + K·ΔSΔC``.

Deviations are normalized by fixed scales (100 ps, 1 fF) before fitting
so the cubic design matrix stays well conditioned.

As an extension over the paper (which never spells out slew
propagation), the same cubic form is fitted to the arc's mean *output
slew*, giving the STA engine a parametric slew model consistent with
the delay calibration.

For the compiled STA engine (:mod:`repro.core.sta_compiled`),
:class:`ArcTensorBank` packs the fitted coefficients of many arcs into
dense tensors so :meth:`ArcCalibration.moments_at` /
:meth:`ArcCalibration.out_slew_at` can be evaluated for thousands of
(arc, slew, load) queries in a handful of numpy operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import CalibrationError
from repro.cells.characterize import (
    REFERENCE_LOAD,
    REFERENCE_SLEW,
    CharacterizationTable,
    LibraryCharacterization,
)
from repro.moments.regression import fit_linear, polynomial_features
from repro.moments.stats import Moments
from repro.units import FF, PS

#: Normalization scales for the interpolation features.
SLEW_SCALE = 100 * PS
LOAD_SCALE = 1 * FF


@dataclass
class ArcCalibration:
    """Fitted Eq. (2)/(3) coefficients of one timing arc.

    Attributes
    ----------
    cell_name / pin / output_rising:
        Arc identity.
    s_ref / c_ref:
        Reference operating condition (seconds, farads).
    ref:
        Reference moments ``M_ref = [mu0, sigma0, gamma0, kappa0]``.
    mu_coef / sigma_coef:
        Eq. (2) coefficient vectors over ``[ΔS, ΔC, ΔS·ΔC]``
        (normalized deviations).
    skew_coef / kurt_coef:
        Eq. (3) coefficient vectors over
        ``[ΔS, ΔC, ΔS², ΔC², ΔS³, ΔC³, ΔS·ΔC]``.
    slew_ref / slew_coef:
        Output-slew model (same cubic form; reproduction extension).
    s_range / c_range:
        Characterized (min, max) of slew and load. Queries outside are
        clamped — cubic polynomials extrapolate explosively, and real
        timers clamp their LUT indices the same way.
    """

    cell_name: str
    pin: str
    output_rising: bool
    s_ref: float
    c_ref: float
    ref: Moments
    mu_coef: np.ndarray
    sigma_coef: np.ndarray
    skew_coef: np.ndarray
    kurt_coef: np.ndarray
    slew_ref: float
    slew_coef: np.ndarray
    s_range: Tuple[float, float] = (0.0, float("inf"))
    c_range: Tuple[float, float] = (0.0, float("inf"))

    def _deviations(self, slew: float, load: float) -> Tuple[float, float]:
        slew = float(np.clip(slew, *self.s_range))
        load = float(np.clip(load, *self.c_range))
        return (slew - self.s_ref) / SLEW_SCALE, (load - self.c_ref) / LOAD_SCALE

    def moments_at(self, slew: float, load: float) -> Moments:
        """Calibrated moments ``[mu', sigma', gamma', kappa']`` (Eqs. 2–3)."""
        ds, dc = self._deviations(slew, load)
        lin = polynomial_features(ds, dc, degree=1)[0]
        cub = polynomial_features(ds, dc, degree=3)[0]
        mu = self.ref.mu + float(lin @ self.mu_coef)
        sigma = self.ref.sigma + float(lin @ self.sigma_coef)
        skew = self.ref.skew + float(cub @ self.skew_coef)
        kurt = self.ref.kurt + float(cub @ self.kurt_coef)
        # Physicality guards: sigma must stay positive and kurtosis
        # above the Pearson bound kurt >= 1 + skew^2.
        sigma = max(sigma, 1e-3 * self.ref.sigma)
        kurt = max(kurt, 1.0 + skew * skew + 1e-6)  # repro-lint: disable=UNIT001 (moment slack, unitless)
        return Moments(mu=mu, sigma=sigma, skew=skew, kurt=kurt, n=self.ref.n)

    def out_slew_at(self, slew: float, load: float) -> float:
        """Calibrated mean output slew (for slew propagation)."""
        ds, dc = self._deviations(slew, load)
        cub = polynomial_features(ds, dc, degree=3)[0]
        return max(float(self.slew_ref + cub @ self.slew_coef), 0.1 * PS)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "cell": self.cell_name,
            "pin": self.pin,
            "edge": "rise" if self.output_rising else "fall",
            "s_ref": self.s_ref,
            "c_ref": self.c_ref,
            "ref": [self.ref.mu, self.ref.sigma, self.ref.skew, self.ref.kurt],
            "ref_n": self.ref.n,
            "mu_coef": self.mu_coef.tolist(),
            "sigma_coef": self.sigma_coef.tolist(),
            "skew_coef": self.skew_coef.tolist(),
            "kurt_coef": self.kurt_coef.tolist(),
            "slew_ref": self.slew_ref,
            "slew_coef": self.slew_coef.tolist(),
            "s_range": list(self.s_range),
            "c_range": list(self.c_range),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArcCalibration":
        """Inverse of :meth:`to_dict`."""
        mu, sigma, skew, kurt = data["ref"]
        return cls(
            cell_name=data["cell"],
            pin=data["pin"],
            output_rising=data["edge"] == "rise",
            s_ref=data["s_ref"],
            c_ref=data["c_ref"],
            ref=Moments(mu, sigma, skew, kurt, n=data.get("ref_n", 0)),
            mu_coef=np.asarray(data["mu_coef"]),
            sigma_coef=np.asarray(data["sigma_coef"]),
            skew_coef=np.asarray(data["skew_coef"]),
            kurt_coef=np.asarray(data["kurt_coef"]),
            slew_ref=data["slew_ref"],
            slew_coef=np.asarray(data["slew_coef"]),
            s_range=tuple(data.get("s_range", (0.0, float("inf")))),
            c_range=tuple(data.get("c_range", (0.0, float("inf")))),
        )


def fit_arc_calibration(
    table: CharacterizationTable,
    s_ref: float = REFERENCE_SLEW,
    c_ref: float = REFERENCE_LOAD,
) -> ArcCalibration:
    """Fit Eq. (2)/(3) coefficients from a characterization grid.

    The reference moments are the table's (bilinear) values at the
    reference condition; every grid point contributes one observation
    of the deviation regression.
    """
    ref = table.moments_at(s_ref, c_ref)
    slew_ref = table.out_slew_at(s_ref, c_ref)

    ss, cc = np.meshgrid(table.slews, table.loads, indexing="ij")
    ds = ((ss - s_ref) / SLEW_SCALE).ravel()
    dc = ((cc - c_ref) / LOAD_SCALE).ravel()
    lin = polynomial_features(ds, dc, degree=1)
    cub = polynomial_features(ds, dc, degree=3)
    if lin.shape[0] < cub.shape[1]:
        raise CalibrationError(
            f"characterization grid of {lin.shape[0]} points is too small for "
            f"the cubic Eq. (3) fit ({cub.shape[1]} coefficients)"
        )

    def fit(features: np.ndarray, grid: np.ndarray, reference: float) -> np.ndarray:
        return fit_linear(features, grid.ravel() - reference, ridge=1e-8).coef

    return ArcCalibration(
        cell_name=table.cell_name,
        pin=table.pin,
        output_rising=table.output_rising,
        s_ref=s_ref,
        c_ref=c_ref,
        ref=ref,
        mu_coef=fit(lin, table.moments[..., 0], ref.mu),
        sigma_coef=fit(lin, table.moments[..., 1], ref.sigma),
        skew_coef=fit(cub, table.moments[..., 2], ref.skew),
        kurt_coef=fit(cub, table.moments[..., 3], ref.kurt),
        slew_ref=slew_ref,
        slew_coef=fit(cub, table.out_slew, slew_ref),
        s_range=(float(table.slews[0]), float(table.slews[-1])),
        c_range=(float(table.loads[0]), float(table.loads[-1])),
    )


@dataclass
class CalibratedCellLibrary:
    """All fitted arc calibrations of a library, keyed like the tables."""

    arcs: Dict[Tuple[str, str, str], ArcCalibration] = field(default_factory=dict)

    @classmethod
    def fit(
        cls,
        charac: LibraryCharacterization,
        s_ref: float = REFERENCE_SLEW,
        c_ref: float = REFERENCE_LOAD,
    ) -> "CalibratedCellLibrary":
        """Fit every characterized arc."""
        out = cls()
        for key, table in charac.tables.items():
            out.arcs[key] = fit_arc_calibration(table, s_ref, c_ref)
        return out

    def get(self, cell_name: str, pin: str, output_rising: bool) -> ArcCalibration:
        """Fetch one arc's calibration.

        Falls back to pin ``A`` of the same cell when the requested pin
        was not characterized (the default library characterization
        covers the representative first pin).
        """
        edge = "rise" if output_rising else "fall"
        key = (cell_name, pin, edge)
        if key in self.arcs:
            return self.arcs[key]
        fallback = (cell_name, "A", edge)
        if fallback in self.arcs:
            return self.arcs[fallback]
        # Last resort: the other edge of pin A (library characterized
        # falling arcs only by default).
        for other_edge in ("fall", "rise"):
            alt = (cell_name, "A", other_edge)
            if alt in self.arcs:
                return self.arcs[alt]
        raise KeyError(
            f"no calibration for {cell_name}/{pin}/{edge}; "
            f"cells present: {sorted({k[0] for k in self.arcs})}"
        )

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {"arcs": [arc.to_dict() for arc in self.arcs.values()]}

    @classmethod
    def from_dict(cls, data: dict) -> "CalibratedCellLibrary":
        """Inverse of :meth:`to_dict`."""
        out = cls()
        for record in data["arcs"]:
            arc = ArcCalibration.from_dict(record)
            edge = "rise" if arc.output_rising else "fall"
            out.arcs[(arc.cell_name, arc.pin, edge)] = arc
        return out

    def content_digest(self) -> str:
        """Stable hash of every fitted coefficient (cache/drift detection).

        Two libraries with identical digests produce bit-identical
        calibrated moments for every query; the compiled STA engine keys
        its cached arc tensors on this so a re-fitted calibration can
        never be served from a stale compile artifact.
        """
        from repro.cache import content_key

        return content_key(self.to_dict(), length=32)


@dataclass
class ArcTensorBank:
    """Eq. (2)/(3) coefficients of many arcs packed into dense tensors.

    Row ``r`` of every tensor holds one distinct :class:`ArcCalibration`;
    ``index`` maps each requested ``(cell, pin, output_rising)`` arc to
    its row (several keys may share a row through the calibration
    store's pin/edge fallback). The vectorized evaluators accept a
    ``rows`` integer array of any shape plus broadcastable slew/load
    arrays, and apply exactly the scalar :meth:`ArcCalibration`
    arithmetic — clamp to the characterized range, normalize the
    deviations, linear/cubic polynomial contraction, physicality guards
    — as one fused sweep over all queries.

    Attributes
    ----------
    index:
        ``(cell, pin, output_rising)`` → tensor row.
    ref:
        ``(A, 4)`` reference moments ``[mu, sigma, skew, kurt]``.
    mu_coef / sigma_coef:
        ``(A, 3)`` Eq. (2) coefficients over ``[ΔS, ΔC, ΔS·ΔC]``.
    skew_coef / kurt_coef / slew_coef:
        ``(A, 7)`` Eq. (3) coefficients over
        ``[ΔS, ΔC, ΔS², ΔC², ΔS³, ΔC³, ΔS·ΔC]``.
    slew_ref:
        ``(A,)`` reference output slews.
    s_ref / c_ref / s_lo / s_hi / c_lo / c_hi:
        ``(A,)`` reference conditions and clamp ranges.
    """

    index: Dict[Tuple[str, str, bool], int]
    ref: np.ndarray
    mu_coef: np.ndarray
    sigma_coef: np.ndarray
    skew_coef: np.ndarray
    kurt_coef: np.ndarray
    slew_ref: np.ndarray
    slew_coef: np.ndarray
    s_ref: np.ndarray
    c_ref: np.ndarray
    s_lo: np.ndarray
    s_hi: np.ndarray
    c_lo: np.ndarray
    c_hi: np.ndarray

    @property
    def n_arcs(self) -> int:
        """Number of distinct packed arcs (tensor rows)."""
        return int(self.ref.shape[0])

    @classmethod
    def pack(
        cls,
        calibrated: CalibratedCellLibrary,
        keys: Iterable[Tuple[str, str, bool]],
    ) -> "ArcTensorBank":
        """Pack the arcs resolved for ``keys`` (deduplicated by identity).

        ``keys`` are resolved through :meth:`CalibratedCellLibrary.get`,
        so the bank reproduces the same pin-``A``/other-edge fallbacks
        the scalar engine applies.
        """
        index: Dict[Tuple[str, str, bool], int] = {}
        rows: Dict[int, int] = {}
        arcs: List[ArcCalibration] = []
        for key in keys:
            if key in index:
                continue
            arc = calibrated.get(*key)
            row = rows.get(id(arc))
            if row is None:
                row = len(arcs)
                rows[id(arc)] = row
                arcs.append(arc)
            index[key] = row
        if not arcs:
            raise CalibrationError("cannot pack an empty arc tensor bank")
        return cls(
            index=index,
            ref=np.array([[a.ref.mu, a.ref.sigma, a.ref.skew, a.ref.kurt] for a in arcs]),
            mu_coef=np.array([a.mu_coef for a in arcs]),
            sigma_coef=np.array([a.sigma_coef for a in arcs]),
            skew_coef=np.array([a.skew_coef for a in arcs]),
            kurt_coef=np.array([a.kurt_coef for a in arcs]),
            slew_ref=np.array([a.slew_ref for a in arcs]),
            slew_coef=np.array([a.slew_coef for a in arcs]),
            s_ref=np.array([a.s_ref for a in arcs]),
            c_ref=np.array([a.c_ref for a in arcs]),
            s_lo=np.array([a.s_range[0] for a in arcs]),
            s_hi=np.array([a.s_range[1] for a in arcs]),
            c_lo=np.array([a.c_range[0] for a in arcs]),
            c_hi=np.array([a.c_range[1] for a in arcs]),
        )

    # -- vectorized evaluation -----------------------------------------
    def _deviations(
        self, rows: np.ndarray, slew: np.ndarray, load: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        s = np.clip(slew, self.s_lo[rows], self.s_hi[rows])
        c = np.clip(load, self.c_lo[rows], self.c_hi[rows])
        return (s - self.s_ref[rows]) / SLEW_SCALE, (c - self.c_ref[rows]) / LOAD_SCALE

    @staticmethod
    def _contract_linear(coef: np.ndarray, ds: np.ndarray, dc: np.ndarray) -> np.ndarray:
        # Same left-to-right sum as the scalar `lin @ coef`.
        return ds * coef[..., 0] + dc * coef[..., 1] + ds * dc * coef[..., 2]

    @staticmethod
    def _contract_cubic(coef: np.ndarray, ds: np.ndarray, dc: np.ndarray) -> np.ndarray:
        return (
            ds * coef[..., 0]
            + dc * coef[..., 1]
            + ds**2 * coef[..., 2]
            + dc**2 * coef[..., 3]
            + ds**3 * coef[..., 4]
            + dc**3 * coef[..., 5]
            + ds * dc * coef[..., 6]
        )

    def mu_at(self, rows: np.ndarray, slew: np.ndarray, load: np.ndarray) -> np.ndarray:
        """Calibrated mean delays for all (arc row, slew, load) queries."""
        ds, dc = self._deviations(rows, slew, load)
        return self.ref[rows, 0] + self._contract_linear(self.mu_coef[rows], ds, dc)

    def moments_at(
        self, rows: np.ndarray, slew: np.ndarray, load: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Calibrated ``(mu, sigma, skew, kurt)`` arrays (Eqs. 2–3).

        Applies the scalar evaluator's physicality guards element-wise:
        sigma floored at ``1e-3 * sigma_ref`` and kurtosis at the
        Pearson bound ``1 + skew**2``.
        """
        ds, dc = self._deviations(rows, slew, load)
        mu = self.ref[rows, 0] + self._contract_linear(self.mu_coef[rows], ds, dc)
        sigma = self.ref[rows, 1] + self._contract_linear(self.sigma_coef[rows], ds, dc)
        skew = self.ref[rows, 2] + self._contract_cubic(self.skew_coef[rows], ds, dc)
        kurt = self.ref[rows, 3] + self._contract_cubic(self.kurt_coef[rows], ds, dc)
        sigma = np.maximum(sigma, 1e-3 * self.ref[rows, 1])
        kurt = np.maximum(kurt, 1.0 + skew * skew + 1e-6)  # repro-lint: disable=UNIT001 (moment slack, unitless)
        return mu, sigma, skew, kurt

    def out_slew_at(
        self, rows: np.ndarray, slew: np.ndarray, load: np.ndarray
    ) -> np.ndarray:
        """Calibrated mean output slews (floored at 0.1 ps, as the scalar)."""
        ds, dc = self._deviations(rows, slew, load)
        raw = self.slew_ref[rows] + self._contract_cubic(self.slew_coef[rows], ds, dc)
        return np.maximum(raw, 0.1 * PS)

    # ------------------------------------------------------------------
    def to_dict(self, arrays: bool = False) -> dict:
        """Serializable form (``arrays=True`` keeps ndarray leaves for packs)."""
        keep = (lambda a: a) if arrays else (lambda a: a.tolist())
        return {
            "index": [
                [cell, pin, bool(rising), row]
                for (cell, pin, rising), row in sorted(self.index.items())
            ],
            "ref": keep(self.ref),
            "mu_coef": keep(self.mu_coef),
            "sigma_coef": keep(self.sigma_coef),
            "skew_coef": keep(self.skew_coef),
            "kurt_coef": keep(self.kurt_coef),
            "slew_ref": keep(self.slew_ref),
            "slew_coef": keep(self.slew_coef),
            "s_ref": keep(self.s_ref),
            "c_ref": keep(self.c_ref),
            "s_lo": keep(self.s_lo),
            "s_hi": keep(self.s_hi),
            "c_lo": keep(self.c_lo),
            "c_hi": keep(self.c_hi),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ArcTensorBank":
        """Inverse of :meth:`to_dict` (floats round-trip exactly via JSON)."""
        return cls(
            index={
                (cell, pin, bool(rising)): int(row)
                for cell, pin, rising, row in data["index"]
            },
            ref=np.asarray(data["ref"]),
            mu_coef=np.asarray(data["mu_coef"]),
            sigma_coef=np.asarray(data["sigma_coef"]),
            skew_coef=np.asarray(data["skew_coef"]),
            kurt_coef=np.asarray(data["kurt_coef"]),
            slew_ref=np.asarray(data["slew_ref"]),
            slew_coef=np.asarray(data["slew_coef"]),
            s_ref=np.asarray(data["s_ref"]),
            c_ref=np.asarray(data["c_ref"]),
            s_lo=np.asarray(data["s_lo"]),
            s_hi=np.asarray(data["s_hi"]),
            c_lo=np.asarray(data["c_lo"]),
            c_hi=np.asarray(data["c_hi"]),
        )
