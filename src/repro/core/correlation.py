"""Stage-to-stage delay correlation estimation (reproduction extension).

Eq. (10) treats every cell and wire on a path as perfectly correlated.
The actual correlation between two gates on the same die is set by the
global-to-local variance split of the process: shared die-to-die
parameters correlate their delays, Pelgrom mismatch decorrelates them.

:func:`estimate_stage_correlation` measures this directly, the way a
foundry characterization team would: simulate two *independent
instances* of the same reference arc under shared global draws and
report the Pearson correlation of their delays. The result feeds
:meth:`repro.core.sta.PathTiming.total_correlated`.
"""

from __future__ import annotations

import numpy as np

from repro.cells.characterize import ArcCharacterizer, fanout_load
from repro.cells.library import CellLibrary
from repro.errors import CalibrationError
from repro.spice.montecarlo import MonteCarloEngine
from repro.units import PS


def estimate_stage_correlation(
    engine: MonteCarloEngine,
    library: CellLibrary,
    cell_name: str = "INVx1",
    input_slew: float = 20 * PS,
    n_samples: int = 1000,
) -> float:
    """Pearson correlation between two same-die instances of one arc.

    Parameters
    ----------
    cell_name:
        Reference cell; the unit inverter is the most mismatch-sensitive
        (smallest devices), giving a conservative (low) estimate.
    n_samples:
        Monte-Carlo samples; the correlation estimate's standard error
        is roughly ``(1 - rho^2) / sqrt(n)``.

    Returns
    -------
    float
        Correlation clipped to ``[0, 1]``.
    """
    characterizer = ArcCharacterizer(engine)
    cell = library.get(cell_name)
    load = fanout_load(cell, engine.tech)
    globals_ = engine.sampler.draw_globals(n_samples)

    delays = []
    for _ in range(2):
        setup = characterizer.arc_setup(cell, "A", input_slew, load)
        result = engine.simulate(setup, n_samples, globals_=globals_)
        if result.yield_fraction < 0.9:
            raise CalibrationError(
                f"correlation fixture yielded only {result.yield_fraction:.0%}"
            )
        delays.append(result.delay)

    mask = np.isfinite(delays[0]) & np.isfinite(delays[1])
    rho = float(np.corrcoef(delays[0][mask], delays[1][mask])[0, 1])
    return float(np.clip(rho, 0.0, 1.0))
