"""Statistical static timing analysis with the N-sigma models (Eq. 10).

The engine propagates (mean arrival, slew) through the gate-level
circuit in topological order, identifies the critical path, and then
evaluates the paper's Eq. (10) along it:

    T_path(n sigma) = sum_cells T_c(n sigma) + sum_wires T_w(n sigma)

with the cell quantiles coming from the calibrated moments + Table I
model and the wire quantiles from Elmore × (1 + n·X_w).

Modeling conventions (shared with the golden Monte-Carlo for a fair
comparison):

* a gate's load is its output net's total wire capacitance plus the
  receiver pins' input capacitances (the LVF "effective capacitance"
  simplification);
* wire slew degradation uses the PERI-style RMS rule
  ``slew_sink = sqrt(slew_root^2 + (k * elmore)^2)``;
* arcs use the characterized falling-output data unless rising arcs
  were characterized too (the calibration store falls back per arc).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import TimingError
from repro.cells.library import CellLibrary
from repro.core.calibration import CalibratedCellLibrary
from repro.core.nsigma_cell import NSigmaCellModel
from repro.core.nsigma_wire import WireVariabilityModel, cell_variability_ratio
from repro.interconnect.metrics import elmore_delays
from repro.moments.stats import SIGMA_LEVELS, Moments
from repro.netlist.circuit import PRIMARY_OUTPUT, Circuit, GateInst, Net
from repro.units import PS
from repro.variation.parameters import Technology

#: RMS slew-degradation factor through a wire of the given Elmore delay.
WIRE_SLEW_FACTOR = 1.4


@dataclass
class TimingModels:
    """Everything the STA needs: library, calibrations, N-sigma models.

    ``stage_correlation`` is the measured same-die delay correlation
    between distinct gates (1.0 = the paper's comonotone Eq. (10); see
    :mod:`repro.core.correlation` and
    :meth:`PathTiming.total_correlated`).
    """

    tech: Technology
    library: CellLibrary
    calibrated: CalibratedCellLibrary
    nsigma: NSigmaCellModel
    wire: WireVariabilityModel
    stage_correlation: float = 1.0
    _ratio_cache: Dict[str, float] = field(
        default_factory=dict, repr=False, compare=False
    )

    def cell_ratio(self, cell_name: str) -> float:
        """Reference variability ratio of a cell (memoized per instance).

        Every wire-variability query needs the driver and load cell
        ratios; deriving one walks the calibration store's fallback
        chain, so the result is cached here — a library has few distinct
        cells but a design queries them millions of times.
        """
        ratio = self._ratio_cache.get(cell_name)
        if ratio is None:
            ratio = cell_variability_ratio(self.calibrated, cell_name)
            self._ratio_cache[cell_name] = ratio
        return ratio


@dataclass
class PathStage:
    """One cell+wire stage of a timing path.

    Attributes
    ----------
    gate:
        Gate instance name ("" for the primary-input launch wire).
    cell_name:
        Library cell of the gate ("" for the launch stage).
    input_pin:
        The gate input pin the path enters through.
    output_rising:
        Edge polarity of the stage's output transition.
    net:
        The net the stage's output drives.
    sink:
        The (gate, pin) the path continues into (or the PO marker).
    input_slew / load:
        Operating condition seen by the cell arc.
    cell_moments:
        Calibrated moments of the cell delay (None for launch stage).
    cell_quantiles:
        Sigma level → cell delay quantile in seconds (zeros for launch).
    wire_elmore / wire_xw:
        Elmore delay to the sink tap and the modeled wire variability.
    wire_quantiles:
        Sigma level → wire delay quantile.
    """

    gate: str
    cell_name: str
    input_pin: str
    output_rising: bool
    net: str
    sink: Tuple[str, str]
    input_slew: float
    load: float
    cell_moments: Optional[Moments]
    cell_quantiles: Dict[int, float]
    wire_elmore: float
    wire_xw: float
    wire_quantiles: Dict[int, float]


@dataclass
class PathTiming:
    """Eq. (10) evaluation along one path."""

    stages: List[PathStage]
    levels: Tuple[int, ...] = SIGMA_LEVELS

    def total(self, level: int) -> float:
        """Path delay quantile at a sigma level (Eq. 10)."""
        return sum(
            s.cell_quantiles.get(level, 0.0) + s.wire_quantiles.get(level, 0.0)
            for s in self.stages
        )

    def total_correlated(self, level: int, correlation: float) -> float:
        """Correlation-aware path quantile (reproduction extension).

        Eq. (10) sums per-stage quantiles, which is exact only when
        stage delays are *comonotone* (perfectly correlated). With
        stage-to-stage delay correlation ``rho < 1`` (local mismatch
        partially averages out along the path), the per-level deviation
        from the median combines in variance space:

            D(n) = sign * sqrt( rho * (sum_i d_i(n))^2
                                + (1 - rho) * sum_i d_i(n)^2 )

        where ``d_i(n) = q_i(n) - q_i(0)``: the correlated variance
        share adds coherently (linear sum squared), the independent
        share in quadrature. ``rho = 1`` recovers Eq. (10) exactly and
        ``rho = 0`` is the fully independent root-sum-square.
        """
        if not 0.0 <= correlation <= 1.0:
            raise TimingError(f"correlation must be in [0, 1], got {correlation}")
        base = self.total(0)
        if level == 0:
            return base
        deviations = [
            (s.cell_quantiles.get(level, 0.0) + s.wire_quantiles.get(level, 0.0))
            - (s.cell_quantiles.get(0, 0.0) + s.wire_quantiles.get(0, 0.0))
            for s in self.stages
        ]
        linear = sum(deviations)
        quad_sq = sum(d * d for d in deviations)
        sign = 1.0 if linear >= 0 else -1.0
        combined = sign * np.sqrt(
            correlation * linear * linear + (1.0 - correlation) * quad_sq
        )
        return base + float(combined)

    @property
    def quantiles(self) -> Dict[int, float]:
        """All sigma-level path quantiles."""
        return {n: self.total(n) for n in self.levels}

    @property
    def n_cells(self) -> int:
        """Number of cell stages on the path."""
        return sum(1 for s in self.stages if s.cell_name)

    @property
    def cell_total(self) -> float:
        """Mean (0σ) cell contribution."""
        return sum(s.cell_quantiles.get(0, 0.0) for s in self.stages)

    @property
    def wire_total(self) -> float:
        """Mean (0σ) wire contribution."""
        return sum(s.wire_quantiles.get(0, 0.0) for s in self.stages)


@dataclass
class STAResult:
    """Full-circuit analysis output."""

    circuit_name: str
    arrival: Dict[str, float]
    critical_path: PathTiming
    runtime_s: float

    @property
    def critical_delay(self) -> float:
        """Mean critical-path delay."""
        return self.critical_path.total(0)


class StatisticalSTA:
    """The paper's timing-analysis engine over a parasitic-annotated circuit.

    Parameters
    ----------
    circuit:
        Gate-level circuit; nets should carry RC trees (ideal nets are
        tolerated and contribute zero wire delay).
    models:
        Fitted :class:`TimingModels`.
    input_slew:
        Slew presented at every primary input.
    """

    def __init__(
        self,
        circuit: Circuit,
        models: TimingModels,
        input_slew: float = 20 * PS,
        launch_rising: bool = True,
    ):
        self.circuit = circuit
        self.models = models
        self.input_slew = input_slew
        self.launch_rising = launch_rising
        self._pin_cap: Dict[Tuple[str, str], float] = {}
        self._ratio_cache: Dict[str, float] = {}
        self._tree_cache: Dict[str, Optional["object"]] = {}
        # Per-net derived parasitics, computed once per engine instance:
        # node → Elmore delay of the annotated tree, and the total load.
        # Multi-sink nets are queried once per sink per analysis; without
        # these, every query re-walked the whole RC tree.
        self._elmore_cache: Dict[str, Dict[str, float]] = {}
        self._load_cache: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Model lookups
    # ------------------------------------------------------------------
    def _input_cap(self, cell_name: str, pin: str) -> float:
        key = (cell_name, pin)
        if key not in self._pin_cap:
            cell = self.models.library.get(cell_name)
            self._pin_cap[key] = cell.input_cap(pin, self.models.tech)
        return self._pin_cap[key]

    def _cell_ratio(self, cell_name: str) -> float:
        if cell_name not in self._ratio_cache:
            self._ratio_cache[cell_name] = self.models.cell_ratio(cell_name)
        return self._ratio_cache[cell_name]

    def _annotated_tree(self, net: Net):
        """The net's RC tree with receiver pin caps added at their taps.

        Real extraction annotates pin loads into the parasitics; Elmore
        on the bare wire would miss the charge the driver pushes into
        the receiver gates.
        """
        if net.name not in self._tree_cache:
            if net.tree is None:
                self._tree_cache[net.name] = None
            else:
                tree = net.tree.copy()
                default_leaf = tree.leaves()[0]
                for sink in net.sinks:
                    if sink == PRIMARY_OUTPUT:
                        continue
                    gate = self.circuit.gates[sink[0]]
                    leaf = net.sink_leaf.get(sink, default_leaf)
                    tree.add_cap(leaf, self._input_cap(gate.cell_name, sink[1]))
                self._tree_cache[net.name] = tree
        return self._tree_cache[net.name]

    def _net_load(self, net: Net) -> float:
        """Total load a driver sees: wire cap + receiver pin caps (cached)."""
        load = self._load_cache.get(net.name)
        if load is not None:
            return load
        tree = self._annotated_tree(net)
        if tree is not None:
            load = tree.total_cap()
        else:
            load = 0.0
            for sink in net.sinks:
                if sink == PRIMARY_OUTPUT:
                    continue
                gate = self.circuit.gates[sink[0]]
                load += self._input_cap(gate.cell_name, sink[1])
        self._load_cache[net.name] = load
        return load

    def _net_elmore(self, net: Net) -> Dict[str, float]:
        """Node → Elmore delay of the net's annotated tree (cached).

        All sink taps of a net share one two-pass tree traversal; the
        per-sink queries of multi-sink nets become dict lookups.
        """
        delays = self._elmore_cache.get(net.name)
        if delays is None:
            tree = self._annotated_tree(net)
            delays = {} if tree is None else elmore_delays(tree)
            self._elmore_cache[net.name] = delays
        return delays

    def _wire_delay_to(self, net: Net, sink: Tuple[str, str]) -> float:
        """Elmore delay from the net root to a sink's tap point."""
        if net.tree is None:
            return 0.0
        leaf = net.sink_leaf.get(sink)
        if leaf is None:
            leaf = net.tree.leaves()[0]
        return float(self._net_elmore(net)[leaf])

    def _wire_xw(self, net: Net, sink: Tuple[str, str]) -> float:
        driver_ratio = 0.0
        if not net.is_primary_input:
            driver_ratio = self._cell_ratio(
                self.circuit.gates[net.driver[0]].cell_name
            )
        load_ratio = 0.0
        if sink != PRIMARY_OUTPUT:
            load_ratio = self._cell_ratio(self.circuit.gates[sink[0]].cell_name)
        return self.models.wire.wire_variability(driver_ratio, load_ratio)

    def _wire_quantiles(
        self, elmore: float, xw: float, levels: Iterable[int]
    ) -> Dict[int, float]:
        return {n: (1.0 + n * xw) * elmore for n in levels}

    @staticmethod
    def _degrade_slew(slew: float, elmore: float) -> float:
        return float(np.hypot(slew, WIRE_SLEW_FACTOR * elmore))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze(self, levels: Iterable[int] = SIGMA_LEVELS) -> STAResult:
        """Propagate timing and evaluate Eq. (10) on the critical path.

        The circuit (topology + attached RC trees) is first run through
        the :mod:`repro.lint` domain rules; structural errors — undriven
        or multi-driven nets, combinational cycles, unknown cells,
        corrupt parasitics — raise :class:`~repro.errors.TimingError`
        before any propagation happens.
        """
        from repro.lint import lint_circuit

        lint_circuit(self.circuit, library=self.models.library).raise_if_errors(
            TimingError, context=f"circuit {self.circuit.name}"
        )
        t0 = time.perf_counter()
        levels = tuple(levels)
        circuit = self.circuit
        # Per-net state at the *driver output* (root of the net's tree):
        # arrival time, slew and edge polarity of the propagated event.
        arrival: Dict[str, float] = {}
        slew: Dict[str, float] = {}
        edge: Dict[str, bool] = {}
        # Which (gate, pin) chain produced each net's arrival.
        from_pin: Dict[str, Optional[Tuple[str, str]]] = {}

        for net_name in circuit.inputs:
            arrival[net_name] = 0.0
            slew[net_name] = self.input_slew
            edge[net_name] = self.launch_rising
            from_pin[net_name] = None

        for gate in circuit.topological_gates():
            out_net = circuit.nets[gate.output_net]
            load = self._net_load(out_net)
            cell = self.models.library.get(gate.cell_name)
            best_arrival = -np.inf
            # (pin, slew_at_pin, out_slew, out_edge)
            best: Optional[Tuple[str, float, float, bool]] = None
            for pin, net_name in gate.pins.items():
                net = circuit.nets[net_name]
                if net_name not in arrival:
                    raise TimingError(
                        f"net {net_name!r} reached gate {gate.name!r} unscheduled"
                    )
                elm = self._wire_delay_to(net, (gate.name, pin))
                at_pin = arrival[net_name] + elm
                slew_pin = self._degrade_slew(slew[net_name], elm)
                in_edge = edge[net_name]
                out_edge = (not in_edge) if cell.arc(pin).inverting else in_edge
                arc = self.models.calibrated.get(gate.cell_name, pin, out_edge)
                moments = arc.moments_at(slew_pin, load)
                at_out = at_pin + moments.mu
                if at_out > best_arrival:
                    best_arrival = at_out
                    best = (pin, slew_pin, arc.out_slew_at(slew_pin, load), out_edge)
            if best is None:
                raise TimingError(f"gate {gate.name!r} has no inputs")
            arrival[gate.output_net] = best_arrival
            slew[gate.output_net] = best[2]
            edge[gate.output_net] = best[3]
            from_pin[gate.output_net] = (gate.name, best[0])

        # Critical endpoint: include the wire to the worst sink.
        end_net, end_sink, worst = self._worst_endpoint(arrival)
        path = self._trace_path(end_net, from_pin)
        timing = self._path_timing(path, end_sink, arrival, slew, edge, levels)
        runtime = time.perf_counter() - t0
        return STAResult(
            circuit_name=circuit.name,
            arrival=arrival,
            critical_path=timing,
            runtime_s=runtime,
        )

    def _worst_endpoint(
        self, arrival: Dict[str, float]
    ) -> Tuple[str, Tuple[str, str], float]:
        worst = -np.inf
        end_net = ""
        end_sink = PRIMARY_OUTPUT
        for net_name, net in self.circuit.nets.items():
            if net_name not in arrival:
                continue
            sinks = [s for s in net.sinks if s == PRIMARY_OUTPUT] or [PRIMARY_OUTPUT]
            for sink in sinks:
                at = arrival[net_name] + self._wire_delay_to(net, sink)
                if at > worst:
                    worst = at
                    end_net = net_name
                    end_sink = sink
        if not end_net:
            raise TimingError("circuit has no timed endpoints")
        return end_net, end_sink, worst

    def _trace_path(
        self, end_net: str, from_pin: Dict[str, Optional[Tuple[str, str]]]
    ) -> List[Tuple[str, str, str]]:
        """Walk back through from_pin: list of (gate, pin, output_net)."""
        chain: List[Tuple[str, str, str]] = []
        net = end_net
        while True:
            prev = from_pin.get(net)
            if prev is None:
                break
            gate_name, pin = prev
            chain.append((gate_name, pin, net))
            net = self.circuit.gates[gate_name].pins[pin]
        chain.reverse()
        return chain

    def _path_timing(
        self,
        chain: List[Tuple[str, str, str]],
        end_sink: Tuple[str, str],
        arrival: Dict[str, float],
        slew: Dict[str, float],
        edge: Dict[str, bool],
        levels: Tuple[int, ...],
    ) -> PathTiming:
        stages: List[PathStage] = []
        circuit = self.circuit
        zero_q = {n: 0.0 for n in levels}

        # Launch stage: the primary-input net's wire into the first gate.
        if chain:
            first_gate, first_pin, _ = chain[0]
            launch_net_name = circuit.gates[first_gate].pins[first_pin]
        else:
            launch_net_name = ""
        if launch_net_name and circuit.nets[launch_net_name].is_primary_input:
            net = circuit.nets[launch_net_name]
            sink = (first_gate, first_pin)
            elm = self._wire_delay_to(net, sink)
            xw = self._wire_xw(net, sink)
            stages.append(
                PathStage(
                    gate="",
                    cell_name="",
                    input_pin="",
                    output_rising=self.launch_rising,
                    net=launch_net_name,
                    sink=sink,
                    input_slew=self.input_slew,
                    load=self._net_load(net),
                    cell_moments=None,
                    cell_quantiles=dict(zero_q),
                    wire_elmore=elm,
                    wire_xw=xw,
                    wire_quantiles=self._wire_quantiles(elm, xw, levels),
                )
            )

        for k, (gate_name, pin, out_net_name) in enumerate(chain):
            gate = circuit.gates[gate_name]
            in_net = circuit.nets[gate.pins[pin]]
            out_net = circuit.nets[out_net_name]
            elm_in = self._wire_delay_to(in_net, (gate_name, pin))
            slew_pin = self._degrade_slew(slew[in_net.name], elm_in)
            load = self._net_load(out_net)
            out_edge = edge[out_net_name]
            arc = self.models.calibrated.get(gate.cell_name, pin, out_edge)
            moments = arc.moments_at(slew_pin, load)
            cell_q = self.models.nsigma.quantiles(moments, levels)
            sink = chain[k + 1][0:2] if k + 1 < len(chain) else end_sink
            if k + 1 < len(chain):
                next_gate, next_pin, _ = chain[k + 1]
                sink = (next_gate, next_pin)
            elm_out = self._wire_delay_to(out_net, sink)
            xw = self._wire_xw(out_net, sink)
            stages.append(
                PathStage(
                    gate=gate_name,
                    cell_name=gate.cell_name,
                    input_pin=pin,
                    output_rising=out_edge,
                    net=out_net_name,
                    sink=sink,
                    input_slew=slew_pin,
                    load=load,
                    cell_moments=moments,
                    cell_quantiles=cell_q,
                    wire_elmore=elm_out,
                    wire_xw=xw,
                    wire_quantiles=self._wire_quantiles(elm_out, xw, levels),
                )
            )
        return PathTiming(stages=stages, levels=levels)
