"""Compiled, levelized, vectorized statistical STA (Eq. 10 at scale).

The scalar :class:`~repro.core.sta.StatisticalSTA` walks the circuit
gate-by-gate in Python: every arc query rebuilds polynomial features,
every wire query re-derives RC-tree delays, and every scenario (input
slew, launch edge, sigma levels) re-walks the whole design. This module
splits that work into a **compile** step done once per (circuit,
calibration) pair and a **query** step that serves whole scenario
batches with a handful of numpy sweeps per topological level:

* **Compile** (:func:`compile_design`):

  - levelize the circuit into topological layers; gates of one layer
    share no data dependencies, so a layer evaluates as one array op;
  - resolve every (cell, pin, edge) timing arc the design uses through
    the calibration store (including its fallbacks) and pack the fitted
    Eq. (2)/(3) coefficients into an
    :class:`~repro.core.calibration.ArcTensorBank`, so ``moments_at`` /
    ``out_slew_at`` become gathered multiply-adds over all gates of a
    level at once;
  - precompute per-net parasitics exactly once: annotated-tree loads,
    per-sink Elmore delays (flat arrays via
    :func:`~repro.interconnect.metrics.elmore_delays`), per-(net, sink)
    wire variabilities ``X_w``, and the per-net endpoint Elmore used
    for critical-endpoint selection.

  The artifact is JSON-serializable and cached in a
  :class:`~repro.cache.JsonCache` keyed on the circuit content and the
  calibration digest — re-analyzing a design reuses the compile.

* **Query** (:meth:`CompiledSTA.analyze_batch`): any number of
  :class:`Scenario` objects evaluate in one vectorized pass — state
  arrays are ``(n_scenarios, n_nets)``, and each level performs one
  gather → arc-tensor contraction → per-gate argmax → scatter cycle.
  Per-scenario critical paths are then traced back through the recorded
  winning pins and priced stage-by-stage with the same quantile models
  the scalar engine uses, so results agree to float round-off
  (well under 1e-12 s; asserted by ``tests/core/test_sta_compiled.py``).

:mod:`repro.perf` counters record the work: ``sta_compiles``,
``sta_scenarios``, ``sta_levels``, ``sta_arc_evals`` plus the
``sta_compile`` / ``sta_query`` wall-time stages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache import JsonCache, content_key
from repro.core.calibration import ArcTensorBank
from repro.core.sta import (
    PathStage,
    PathTiming,
    STAResult,
    StatisticalSTA,
    TimingModels,
    WIRE_SLEW_FACTOR,
)
from repro.errors import TimingError
from repro.interconnect.metrics import elmore_delays
from repro.moments.stats import SIGMA_LEVELS, Moments
from repro.netlist.circuit import Circuit, Net, PRIMARY_OUTPUT
from repro.perf import PerfCounters
from repro.units import PS

#: Cache artifact kind for compiled designs.
COMPILE_CACHE_KIND = "sta_compiled"


@dataclass(frozen=True)
class Scenario:
    """One STA query: operating point + reporting knobs.

    Attributes
    ----------
    input_slew:
        Slew presented at every primary input (seconds).
    launch_rising:
        Edge polarity launched at the primary inputs.
    levels:
        Sigma levels to evaluate along the critical path.
    stage_correlation:
        Stage-to-stage delay correlation for the correlation-aware path
        quantiles (None = the fitted ``models.stage_correlation``).
    """

    input_slew: float = 20 * PS
    launch_rising: bool = True
    levels: Tuple[int, ...] = SIGMA_LEVELS
    stage_correlation: Optional[float] = None


@dataclass
class BatchSTAResult(STAResult):
    """Scalar-compatible result plus batch metadata.

    ``runtime_s`` is the batch query wall time amortized over its
    scenarios. ``correlated_quantiles`` evaluates
    :meth:`~repro.core.sta.PathTiming.total_correlated` at the
    scenario's stage correlation.
    """

    scenario: Scenario = field(default_factory=Scenario)
    correlated_quantiles: Dict[int, float] = field(default_factory=dict)


@dataclass
class CompiledLevel:
    """One topological layer, padded to its widest gate.

    All per-pin arrays are ``(n_gates, max_pins)``; padding slots have
    ``valid = False`` and harmless index 0 elsewhere.

    Attributes
    ----------
    gate_names:
        Instance names, in deterministic topological order.
    out_net:
        ``(G,)`` output-net index of each gate.
    load:
        ``(G,)`` total output load (annotated wire + receiver pins).
    valid:
        ``(G, P)`` mask of real input pins.
    src_net:
        ``(G, P)`` input-net index per pin.
    elm_in:
        ``(G, P)`` Elmore delay from the input net's root to the pin tap.
    inverting:
        ``(G, P)`` whether the pin's arc inverts the edge.
    arc_rise / arc_fall:
        ``(G, P)`` arc-tensor rows used when the *output* edge is
        rising / falling.
    """

    gate_names: List[str]
    out_net: np.ndarray
    load: np.ndarray
    valid: np.ndarray
    src_net: np.ndarray
    elm_in: np.ndarray
    inverting: np.ndarray
    arc_rise: np.ndarray
    arc_fall: np.ndarray

    @property
    def n_arcs(self) -> int:
        """Number of real (gate, pin) arcs in the level."""
        return int(self.valid.sum())

    def to_dict(self, arrays: bool = False) -> dict:
        """Serializable form (``arrays=True`` keeps ndarray leaves for packs)."""
        keep = (lambda a: a) if arrays else (lambda a: a.tolist())
        return {
            "gate_names": _pack_str_list(self.gate_names)
            if arrays
            else self.gate_names,
            "out_net": keep(self.out_net),
            "load": keep(self.load),
            "valid": keep(self.valid),
            "src_net": keep(self.src_net),
            "elm_in": keep(self.elm_in),
            "inverting": keep(self.inverting),
            "arc_rise": keep(self.arc_rise),
            "arc_fall": keep(self.arc_fall),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompiledLevel":
        """Inverse of :meth:`to_dict`."""
        return cls(
            gate_names=_str_list_from(data["gate_names"]),
            out_net=np.asarray(data["out_net"], dtype=np.int64),
            load=np.asarray(data["load"], dtype=float),
            valid=np.asarray(data["valid"], dtype=bool),
            src_net=np.asarray(data["src_net"], dtype=np.int64),
            elm_in=np.asarray(data["elm_in"], dtype=float),
            inverting=np.asarray(data["inverting"], dtype=bool),
            arc_rise=np.asarray(data["arc_rise"], dtype=np.int64),
            arc_fall=np.asarray(data["arc_fall"], dtype=np.int64),
        )


#: Dict key for a (net, sink) pair; the primary-output sentinel
#: serializes as its marker tuple.
SinkKey = Tuple[str, str, str]


def _sink_key(net_name: str, sink: Tuple[str, str]) -> SinkKey:
    return (net_name, sink[0], sink[1])


#: Separators of the packed sink-table key blob. Neither occurs in the
#: netlist subset's identifiers; the encoder falls back to pair lists
#: if one ever does.
_KEY_FIELD_SEP = "\x1f"
_KEY_ENTRY_SEP = "\n"


def _pack_sink_table(table: Dict[SinkKey, float]):
    """Sink table as two ndarray segments (keys blob + values).

    The pair-list form dominates the pack manifest's JSON parse time
    on large circuits; as segments, the keys are one utf-8 blob and
    the values raw float64 — both mmap straight in.
    """
    items = sorted(table.items())
    if any(
        _KEY_FIELD_SEP in part or _KEY_ENTRY_SEP in part
        for key, _ in items
        for part in key
    ):  # pragma: no cover - identifiers never contain separators
        return [[list(k), v] for k, v in items]
    blob = _KEY_ENTRY_SEP.join(_KEY_FIELD_SEP.join(k) for k, _ in items)
    return {
        "keys": np.frombuffer(blob.encode("utf-8"), dtype=np.uint8).copy(),
        "values": np.asarray([v for _, v in items], dtype=np.float64),
    }


def _sink_table_from(data) -> Dict[SinkKey, float]:
    """Inverse of :func:`_pack_sink_table` (either encoding)."""
    if isinstance(data, dict):
        raw = np.asarray(data["keys"], dtype=np.uint8).tobytes()
        values = np.asarray(data["values"], dtype=float)
        if not raw:
            return {}
        # One C-level split into a flat field list, re-grouped into
        # key triples by zipping one iterator three ways — measurably
        # faster than a per-entry str.split on large designs.
        parts = iter(
            raw.decode("utf-8")
            .replace(_KEY_ENTRY_SEP, _KEY_FIELD_SEP)
            .split(_KEY_FIELD_SEP)
        )
        return dict(zip(zip(parts, parts, parts), values.tolist()))
    return {tuple(k): float(v) for k, v in data}


def _sink_xw_from(data, elmore_data, elmore: Dict[SinkKey, float]):
    """Decode ``sink_xw``, reusing ``sink_elmore``'s decoded keys.

    Both tables are filled together at compile time, so their packed
    key blobs are byte-identical; skipping the second blob decode
    roughly halves the sink-table share of a pack load.
    """
    if (
        isinstance(data, dict)
        and isinstance(elmore_data, dict)
        and np.array_equal(data["keys"], elmore_data["keys"])
    ):
        values = np.asarray(data["values"], dtype=float)
        return dict(zip(elmore.keys(), values.tolist()))
    return _sink_table_from(data)


def _pack_str_list(names: List[str]):
    """String list as one utf-8 blob segment (manifest-JSON relief)."""
    if not names or any(_KEY_ENTRY_SEP in n for n in names):
        return list(names)
    blob = _KEY_ENTRY_SEP.join(names)
    return {"blob": np.frombuffer(blob.encode("utf-8"), dtype=np.uint8).copy()}


def _str_list_from(data) -> List[str]:
    """Inverse of :func:`_pack_str_list` (either encoding)."""
    if isinstance(data, dict):
        raw = np.asarray(data["blob"], dtype=np.uint8).tobytes()
        return raw.decode("utf-8").split(_KEY_ENTRY_SEP)
    return list(data)


#: Per-level array fields and their dtypes, in serialization order.
#: ``(G,)`` fields are concatenated gate-major; ``(G, P)`` fields are
#: raveled then concatenated, so a contiguous slice + reshape
#: reconstructs each level as a zero-copy view.
_LEVEL_G_FIELDS = (("out_net", np.int64), ("load", np.float64))
_LEVEL_GP_FIELDS = (
    ("valid", np.bool_),
    ("src_net", np.int64),
    ("elm_in", np.float64),
    ("inverting", np.bool_),
    ("arc_rise", np.int64),
    ("arc_fall", np.int64),
)


def _pack_levels(levels: List["CompiledLevel"]) -> dict:
    """All levels as one segment per field (manifest-JSON relief).

    A per-level-per-field segment layout costs hundreds of manifest
    records on deep circuits; parsing those dominates pack-open time.
    Concatenating each field across levels keeps the manifest O(1) in
    depth while the loader slices zero-copy views back out.
    """
    shapes = np.asarray(
        [[len(lv.gate_names), lv.valid.shape[1]] for lv in levels],
        dtype=np.int64,
    ).reshape(len(levels), 2)
    packed: dict = {
        "gate_names": _pack_str_list(
            [name for lv in levels for name in lv.gate_names]
        ),
        "shapes": shapes,
    }
    for field_name, dtype in _LEVEL_G_FIELDS:
        parts = [getattr(lv, field_name) for lv in levels]
        packed[field_name] = (
            np.concatenate(parts) if parts else np.zeros(0, dtype)
        ).astype(dtype, copy=False)
    for field_name, dtype in _LEVEL_GP_FIELDS:
        parts = [getattr(lv, field_name).ravel() for lv in levels]
        packed[field_name] = (
            np.concatenate(parts) if parts else np.zeros(0, dtype)
        ).astype(dtype, copy=False)
    return packed


def _levels_from(data) -> List["CompiledLevel"]:
    """Inverse of :func:`_pack_levels` (either encoding)."""
    if isinstance(data, list):
        return [CompiledLevel.from_dict(d) for d in data]
    shapes = np.asarray(data["shapes"], dtype=np.int64).reshape(-1, 2)
    names = _str_list_from(data["gate_names"])
    flat_g = {
        f: np.asarray(data[f], dtype=dt) for f, dt in _LEVEL_G_FIELDS
    }
    flat_gp = {
        f: np.asarray(data[f], dtype=dt) for f, dt in _LEVEL_GP_FIELDS
    }
    levels: List[CompiledLevel] = []
    g0 = gp0 = n0 = 0
    for n_gates, max_pins in shapes.tolist():
        fields = {
            f: flat_g[f][g0 : g0 + n_gates] for f, _ in _LEVEL_G_FIELDS
        }
        fields.update(
            {
                f: flat_gp[f][gp0 : gp0 + n_gates * max_pins].reshape(
                    n_gates, max_pins
                )
                for f, _ in _LEVEL_GP_FIELDS
            }
        )
        levels.append(
            CompiledLevel(gate_names=names[n0 : n0 + n_gates], **fields)
        )
        n0 += n_gates
        g0 += n_gates
        gp0 += n_gates * max_pins
    return levels


@dataclass
class CompiledDesign:
    """The query-ready artifact of :func:`compile_design`.

    Attributes
    ----------
    circuit_name:
        Name of the compiled circuit (sanity check at bind time).
    net_names:
        Net order shared by every per-net array (= circuit insertion
        order, so endpoint argmax matches the scalar engine's
        iteration order).
    input_nets:
        ``(I,)`` indices of primary-input nets.
    net_load / end_elmore:
        ``(N,)`` per-net total load and root→endpoint-tap Elmore delay.
    levels:
        Topological layers (see :class:`CompiledLevel`).
    arcs:
        Packed arc coefficient tensors.
    sink_elmore / sink_xw:
        Per-(net, sink) Elmore delay and wire variability ``X_w``
        (flattened once at compile; path pricing is dict lookups).
    calibration_digest:
        :meth:`CalibratedCellLibrary.content_digest` of the calibration
        the tensors were packed from — the drift sentinel checked by
        the ``NSM003`` lint rule and the cache loader.
    pack:
        The open :class:`~repro.pack.PackFile` when this design's
        tensors are read-only zero-copy views into a mmap'd ``.rpk``
        (set by :func:`repro.pack.load_compiled_design` and the
        :class:`~repro.cache.PackCache` path of
        :func:`compile_design`); ``None`` for heap-resident designs.
        mmap-backed designs cost only their python side tables in
        private memory — the tensor bytes are shared page cache.
    """

    circuit_name: str
    net_names: List[str]
    input_nets: np.ndarray
    net_load: np.ndarray
    end_elmore: np.ndarray
    levels: List[CompiledLevel]
    arcs: ArcTensorBank
    sink_elmore: Dict[SinkKey, float]
    sink_xw: Dict[SinkKey, float]
    calibration_digest: str
    pack: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def n_nets(self) -> int:
        """Number of nets."""
        return len(self.net_names)

    @property
    def n_levels(self) -> int:
        """Number of topological layers."""
        return len(self.levels)

    @property
    def n_gates(self) -> int:
        """Number of gate instances."""
        return sum(len(level.gate_names) for level in self.levels)

    @property
    def n_arcs(self) -> int:
        """Number of (gate, pin) arcs evaluated per scenario."""
        return sum(level.n_arcs for level in self.levels)

    def to_dict(self, arrays: bool = False) -> dict:
        """Serializable form (the cache/pack artifact).

        ``arrays=False`` (default) emits nested lists for JSON;
        ``arrays=True`` keeps the ndarrays so :mod:`repro.pack` can
        store them as raw binary segments.
        """
        keep = (lambda a: a) if arrays else (lambda a: a.tolist())
        return {
            "circuit_name": self.circuit_name,
            "net_names": _pack_str_list(self.net_names)
            if arrays
            else self.net_names,
            "input_nets": keep(self.input_nets),
            "net_load": keep(self.net_load),
            "end_elmore": keep(self.end_elmore),
            "levels": _pack_levels(self.levels)
            if arrays
            else [level.to_dict() for level in self.levels],
            "arc_table": self.arcs.to_dict(arrays=arrays),
            "sink_elmore": _pack_sink_table(self.sink_elmore)
            if arrays
            else [[list(k), v] for k, v in sorted(self.sink_elmore.items())],
            "sink_xw": _pack_sink_table(self.sink_xw)
            if arrays
            else [[list(k), v] for k, v in sorted(self.sink_xw.items())],
            "calibration_digest": self.calibration_digest,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompiledDesign":
        """Inverse of :meth:`to_dict`."""
        sink_elmore = _sink_table_from(data["sink_elmore"])
        sink_xw = _sink_xw_from(data["sink_xw"], data["sink_elmore"], sink_elmore)
        return cls(
            circuit_name=data["circuit_name"],
            net_names=_str_list_from(data["net_names"]),
            input_nets=np.asarray(data["input_nets"], dtype=np.int64),
            net_load=np.asarray(data["net_load"], dtype=float),
            end_elmore=np.asarray(data["end_elmore"], dtype=float),
            levels=_levels_from(data["levels"]),
            arcs=ArcTensorBank.from_dict(data["arc_table"]),
            sink_elmore=sink_elmore,
            sink_xw=sink_xw,
            calibration_digest=data["calibration_digest"],
        )


# ----------------------------------------------------------------------
# Compile
# ----------------------------------------------------------------------
def _circuit_signature(circuit: Circuit) -> dict:
    """Canonical content description of a parasitic-annotated circuit."""
    nets = []
    for net in circuit.nets.values():
        nets.append(
            [
                net.name,
                list(net.driver),
                [list(s) for s in net.sinks],
                sorted([list(k), v] for k, v in net.sink_leaf.items()),
                list(net.tree.flatten()) if net.tree is not None else None,
            ]
        )
    return {
        "name": circuit.name,
        "inputs": list(circuit.inputs),
        "outputs": list(circuit.outputs),
        "gates": [
            [g.name, g.cell_name, sorted(g.pins.items()), g.output_net]
            for g in circuit.gates.values()
        ],
        "nets": nets,
    }


def design_cache_key(circuit: Circuit, models: TimingModels) -> str:
    """Content key of a compile artifact: circuit + every model input."""
    pin_caps = {}
    for gate in circuit.gates.values():
        cell = models.library.get(gate.cell_name)
        for pin in gate.pins:
            pin_caps[f"{gate.cell_name}/{pin}"] = cell.input_cap(pin, models.tech)
    payload = {
        "circuit": _circuit_signature(circuit),
        "calibration_digest": models.calibrated.content_digest(),
        "wire": models.wire.to_dict(),
        "pin_caps": sorted(pin_caps.items()),
    }
    return content_key(payload, length=32)


def compile_design(
    circuit: Circuit,
    models: TimingModels,
    cache: Optional[JsonCache] = None,
    perf: Optional[PerfCounters] = None,
) -> CompiledDesign:
    """Levelize + pack a circuit into a :class:`CompiledDesign`.

    The circuit is linted first (same fail-fast contract as the scalar
    engine). With ``cache`` given, the artifact is stored/loaded keyed
    on :func:`design_cache_key`; a loaded artifact is run through the
    ``NSM003`` drift lint (:func:`repro.lint.lint_compiled_design`) and
    rebuilt — never served — when its packed tensors disagree with the
    current calibration. A :class:`~repro.cache.PackCache` stores the
    artifact as a mmap-able ``.rpk`` instead of JSON; hits then bind
    the tensors as read-only zero-copy views (``design.pack`` holds the
    mapping).
    """
    from repro.lint import lint_circuit, lint_compiled_design

    lint_circuit(circuit, library=models.library).raise_if_errors(
        TimingError, context=f"circuit {circuit.name}"
    )
    perf = perf if perf is not None else PerfCounters()
    digest = models.calibrated.content_digest()
    key = None
    if cache is not None:
        key = design_cache_key(circuit, models)
        doc = cache.get(COMPILE_CACHE_KIND, key)
        if doc is not None:
            candidate = CompiledDesign.from_dict(doc)
            candidate.pack = doc.get("__pack__")
            if not lint_compiled_design(candidate, models.calibrated).errors:
                return candidate

    design = _build_design(circuit, models, digest)
    perf.incr(sta_compiles=1)
    if cache is not None and key is not None:
        cache.put(
            COMPILE_CACHE_KIND,
            key,
            design.to_dict(arrays=getattr(cache, "binary", False)),
        )
    return design


def _build_design(
    circuit: Circuit, models: TimingModels, digest: str
) -> CompiledDesign:
    # The scalar engine is reused as the single source of parasitic
    # truth: its annotated trees, cached Elmore maps and load cache are
    # exactly what gets flattened into the compile artifact.
    scalar = StatisticalSTA(circuit, models)
    net_names = list(circuit.nets)
    net_index = {name: i for i, name in enumerate(net_names)}

    n_nets = len(net_names)
    net_load = np.zeros(n_nets)
    end_elmore = np.zeros(n_nets)
    sink_elmore: Dict[SinkKey, float] = {}
    sink_xw: Dict[SinkKey, float] = {}

    for name, net in circuit.nets.items():
        i = net_index[name]
        net_load[i] = scalar._net_load(net)
        end_elmore[i] = scalar._wire_delay_to(net, PRIMARY_OUTPUT)
        sink_elmore[_sink_key(name, PRIMARY_OUTPUT)] = end_elmore[i]
        sink_xw[_sink_key(name, PRIMARY_OUTPUT)] = scalar._wire_xw(
            net, PRIMARY_OUTPUT
        )
        for sink in net.sinks:
            if sink == PRIMARY_OUTPUT:
                continue
            sink_elmore[_sink_key(name, sink)] = scalar._wire_delay_to(net, sink)
            sink_xw[_sink_key(name, sink)] = scalar._wire_xw(net, sink)

    # Arc tensor bank over every (cell, pin, edge) the design can query.
    keys: List[Tuple[str, str, bool]] = []
    for gate in circuit.gates.values():
        for pin in gate.pins:
            keys.append((gate.cell_name, pin, True))
            keys.append((gate.cell_name, pin, False))
    levels: List[CompiledLevel] = []
    arcs = None
    if keys:
        arcs = ArcTensorBank.pack(models.calibrated, keys)

        # Levelize: level(gate) = 1 + max(level of driving gates).
        order = circuit.topological_gates()
        gate_level: Dict[str, int] = {}
        groups: Dict[int, List] = {}
        for gate in order:
            lvl = 0
            for net_name in gate.pins.values():
                net = circuit.nets[net_name]
                if not net.is_primary_input:
                    lvl = max(lvl, gate_level[net.driver[0]])
            lvl += 1
            gate_level[gate.name] = lvl
            groups.setdefault(lvl, []).append(gate)

        for lvl in sorted(groups):
            gates = groups[lvl]
            max_pins = max(len(g.pins) for g in gates)
            shape = (len(gates), max_pins)
            valid = np.zeros(shape, dtype=bool)
            src_net = np.zeros(shape, dtype=np.int64)
            elm_in = np.zeros(shape)
            inverting = np.zeros(shape, dtype=bool)
            arc_rise = np.zeros(shape, dtype=np.int64)
            arc_fall = np.zeros(shape, dtype=np.int64)
            out_net = np.zeros(len(gates), dtype=np.int64)
            load = np.zeros(len(gates))
            for g, gate in enumerate(gates):
                cell = models.library.get(gate.cell_name)
                out_net[g] = net_index[gate.output_net]
                load[g] = net_load[out_net[g]]
                for p, (pin, net_name) in enumerate(gate.pins.items()):
                    valid[g, p] = True
                    src_net[g, p] = net_index[net_name]
                    elm_in[g, p] = sink_elmore[
                        _sink_key(net_name, (gate.name, pin))
                    ]
                    inverting[g, p] = cell.arc(pin).inverting
                    arc_rise[g, p] = arcs.index[(gate.cell_name, pin, True)]
                    arc_fall[g, p] = arcs.index[(gate.cell_name, pin, False)]
            levels.append(
                CompiledLevel(
                    gate_names=[g.name for g in gates],
                    out_net=out_net,
                    load=load,
                    valid=valid,
                    src_net=src_net,
                    elm_in=elm_in,
                    inverting=inverting,
                    arc_rise=arc_rise,
                    arc_fall=arc_fall,
                )
            )
    if arcs is None:
        raise TimingError(
            f"circuit {circuit.name!r} has no gates; nothing to compile"
        )
    return CompiledDesign(
        circuit_name=circuit.name,
        net_names=net_names,
        input_nets=np.asarray(
            [net_index[n] for n in circuit.inputs], dtype=np.int64
        ),
        net_load=net_load,
        end_elmore=end_elmore,
        levels=levels,
        arcs=arcs,
        sink_elmore=sink_elmore,
        sink_xw=sink_xw,
        calibration_digest=digest,
    )


# ----------------------------------------------------------------------
# Query
# ----------------------------------------------------------------------
class CompiledSTA:
    """Batch scenario queries over a compiled design.

    Parameters
    ----------
    circuit / models:
        The design and fitted models (must match the compile artifact).
    cache:
        Optional :class:`~repro.cache.JsonCache`; the compile artifact
        is stored/loaded there keyed on circuit + calibration content.
    perf:
        Optional shared :class:`~repro.perf.PerfCounters`; compile and
        query work is recorded under ``sta_*`` counters and the
        ``sta_compile`` / ``sta_query`` wall stages.
    design:
        Pre-built :class:`CompiledDesign` to bind instead of compiling.
    """

    def __init__(
        self,
        circuit: Circuit,
        models: TimingModels,
        cache: Optional[JsonCache] = None,
        perf: Optional[PerfCounters] = None,
        design: Optional[CompiledDesign] = None,
    ):
        self.circuit = circuit
        self.models = models
        self.perf = perf if perf is not None else PerfCounters()
        if design is None:
            with self.perf.timer("sta_compile"):
                design = compile_design(circuit, models, cache=cache, perf=self.perf)
        if design.circuit_name != circuit.name:
            raise TimingError(
                f"compiled design {design.circuit_name!r} does not match "
                f"circuit {circuit.name!r}"
            )
        self.design = design
        self._net_index = {name: i for i, name in enumerate(design.net_names)}

    # ------------------------------------------------------------------
    def analyze(
        self,
        input_slew: float = 20 * PS,
        launch_rising: bool = True,
        levels: Iterable[int] = SIGMA_LEVELS,
    ) -> BatchSTAResult:
        """Single-scenario convenience wrapper over :meth:`analyze_batch`."""
        scenario = Scenario(
            input_slew=input_slew,
            launch_rising=launch_rising,
            levels=tuple(levels),
        )
        return self.analyze_batch([scenario])[0]

    def analyze_batch(self, scenarios: Sequence[Scenario]) -> List[BatchSTAResult]:
        """Evaluate all scenarios in one vectorized pass.

        Propagation state is ``(n_scenarios, n_nets)``; every topological
        level costs one gather → arc-tensor contraction → per-gate argmax
        → scatter cycle regardless of the batch width. Per-scenario
        critical paths are then traced and priced.

        Safe to call concurrently on a shared instance: all propagation
        state is per-call locals, and perf-counter updates go through
        :meth:`~repro.perf.PerfCounters.incr` under the counters' lock.
        """
        if not scenarios:
            return []
        design = self.design
        with self.perf.timer("sta_query"):
            t0 = time.perf_counter()
            arrival, slew, edge, winner = self._propagate(scenarios)
            # Critical endpoint per scenario: first maximum in net order,
            # matching the scalar engine's strict-> iteration.
            totals = arrival + design.end_elmore[None, :]
            end_idx = np.argmax(totals, axis=1)
            results = []
            for s, scenario in enumerate(scenarios):
                results.append(
                    self._scenario_result(
                        scenario,
                        int(end_idx[s]),
                        arrival[s],
                        slew[s],
                        edge[s],
                        winner[s],
                    )
                )
            wall = time.perf_counter() - t0
            self.perf.incr(sta_scenarios=len(scenarios))
        for result in results:
            result.runtime_s = wall / len(scenarios)
        return results

    # ------------------------------------------------------------------
    def _propagate(
        self, scenarios: Sequence[Scenario]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        design = self.design
        n_s, n_n = len(scenarios), design.n_nets
        arrival = np.zeros((n_s, n_n))
        slew = np.zeros((n_s, n_n))
        edge = np.zeros((n_s, n_n), dtype=bool)
        winner = np.zeros((n_s, n_n), dtype=np.int32)

        inputs = design.input_nets
        slew[:, inputs] = np.asarray([sc.input_slew for sc in scenarios])[:, None]
        edge[:, inputs] = np.asarray(
            [sc.launch_rising for sc in scenarios], dtype=bool
        )[:, None]

        arcs = design.arcs
        arc_evals = 0
        for level in design.levels:
            src = level.src_net
            at_pin = arrival[:, src] + level.elm_in
            slew_pin = np.hypot(slew[:, src], WIRE_SLEW_FACTOR * level.elm_in)
            out_edge = edge[:, src] ^ level.inverting
            rows = np.where(out_edge, level.arc_rise, level.arc_fall)
            load = level.load[None, :, None]
            mu = arcs.mu_at(rows, slew_pin, load)
            at_out = np.where(level.valid, at_pin + mu, -np.inf)

            win = np.argmax(at_out, axis=2)
            take = win[:, :, None]
            best_at = np.take_along_axis(at_out, take, axis=2)[:, :, 0]
            best_slew_pin = np.take_along_axis(slew_pin, take, axis=2)[:, :, 0]
            best_rows = np.take_along_axis(rows, take, axis=2)[:, :, 0]
            best_edge = np.take_along_axis(out_edge, take, axis=2)[:, :, 0]
            out_slew = arcs.out_slew_at(best_rows, best_slew_pin, level.load[None, :])

            arrival[:, level.out_net] = best_at
            slew[:, level.out_net] = out_slew
            edge[:, level.out_net] = best_edge
            winner[:, level.out_net] = win.astype(np.int32)

            arc_evals += n_s * level.n_arcs
        # One locked update per batch: bare `+=` on shared counters races
        # under concurrent queries against one instance.
        self.perf.incr(sta_levels=len(design.levels), sta_arc_evals=arc_evals)
        return arrival, slew, edge, winner

    def _trace_path(
        self, end_net: str, winner: np.ndarray
    ) -> List[Tuple[str, str, str]]:
        """Walk winning pins back from the endpoint: (gate, pin, out net)."""
        chain: List[Tuple[str, str, str]] = []
        net_name = end_net
        while True:
            net = self.circuit.nets[net_name]
            if net.is_primary_input:
                break
            gate = self.circuit.gates[net.driver[0]]
            pin = list(gate.pins)[int(winner[self._net_index[net_name]])]
            chain.append((gate.name, pin, net_name))
            net_name = gate.pins[pin]
        chain.reverse()
        return chain

    def _scenario_result(
        self,
        scenario: Scenario,
        end_idx: int,
        arrival: np.ndarray,
        slew: np.ndarray,
        edge: np.ndarray,
        winner: np.ndarray,
    ) -> BatchSTAResult:
        design = self.design
        levels = tuple(scenario.levels)
        end_net = design.net_names[end_idx]
        chain = self._trace_path(end_net, winner)
        timing = self._path_timing(scenario, chain, end_net, slew, edge, levels)
        rho = (
            scenario.stage_correlation
            if scenario.stage_correlation is not None
            else self.models.stage_correlation
        )
        return BatchSTAResult(
            circuit_name=design.circuit_name,
            arrival={name: float(arrival[i]) for i, name in enumerate(design.net_names)},
            critical_path=timing,
            runtime_s=0.0,
            scenario=scenario,
            correlated_quantiles={
                n: timing.total_correlated(n, rho) for n in levels
            },
        )

    def _path_timing(
        self,
        scenario: Scenario,
        chain: List[Tuple[str, str, str]],
        end_net: str,
        slew: np.ndarray,
        edge: np.ndarray,
        levels: Tuple[int, ...],
    ) -> PathTiming:
        """Price the traced path: scalar-identical stage construction.

        Cell moments come from the scalar :class:`ArcCalibration`
        objects (the path holds tens of stages — vectorizing the full
        Table I pricing happens across stages below, not per stage).
        """
        design = self.design
        circuit = self.circuit
        zero_q = {n: 0.0 for n in levels}
        end_sink = PRIMARY_OUTPUT

        stages: List[PathStage] = []
        cell_moments: List[Optional[Moments]] = []

        if chain:
            first_gate, first_pin, _ = chain[0]
            launch_net_name = circuit.gates[first_gate].pins[first_pin]
        else:
            launch_net_name = ""
        if launch_net_name and circuit.nets[launch_net_name].is_primary_input:
            sink = (first_gate, first_pin)
            elm = design.sink_elmore[_sink_key(launch_net_name, sink)]
            xw = design.sink_xw[_sink_key(launch_net_name, sink)]
            stages.append(
                PathStage(
                    gate="",
                    cell_name="",
                    input_pin="",
                    output_rising=scenario.launch_rising,
                    net=launch_net_name,
                    sink=sink,
                    input_slew=scenario.input_slew,
                    load=float(design.net_load[self._net_index[launch_net_name]]),
                    cell_moments=None,
                    cell_quantiles=dict(zero_q),
                    wire_elmore=elm,
                    wire_xw=xw,
                    wire_quantiles={n: (1.0 + n * xw) * elm for n in levels},
                )
            )
            cell_moments.append(None)

        for k, (gate_name, pin, out_net_name) in enumerate(chain):
            gate = circuit.gates[gate_name]
            in_net_name = gate.pins[pin]
            in_idx = self._net_index[in_net_name]
            out_idx = self._net_index[out_net_name]
            elm_in = design.sink_elmore[_sink_key(in_net_name, (gate_name, pin))]
            slew_pin = float(
                np.hypot(slew[in_idx], WIRE_SLEW_FACTOR * elm_in)
            )
            load = float(design.net_load[out_idx])
            out_edge = bool(edge[out_idx])
            arc = self.models.calibrated.get(gate.cell_name, pin, out_edge)
            moments = arc.moments_at(slew_pin, load)
            if k + 1 < len(chain):
                next_gate, next_pin, _ = chain[k + 1]
                sink = (next_gate, next_pin)
            else:
                sink = end_sink
            elm_out = design.sink_elmore[_sink_key(out_net_name, sink)]
            xw = design.sink_xw[_sink_key(out_net_name, sink)]
            stages.append(
                PathStage(
                    gate=gate_name,
                    cell_name=gate.cell_name,
                    input_pin=pin,
                    output_rising=out_edge,
                    net=out_net_name,
                    sink=sink,
                    input_slew=slew_pin,
                    load=load,
                    cell_moments=moments,
                    cell_quantiles={},  # filled by the vectorized sweep below
                    wire_elmore=elm_out,
                    wire_xw=xw,
                    wire_quantiles={n: (1.0 + n * xw) * elm_out for n in levels},
                )
            )
            cell_moments.append(moments)

        # Price all cell stages at once (Table I, vectorized over stages).
        cell_idx = [i for i, m in enumerate(cell_moments) if m is not None]
        if cell_idx:
            mu = np.array([cell_moments[i].mu for i in cell_idx])
            sg = np.array([cell_moments[i].sigma for i in cell_idx])
            sk = np.array([cell_moments[i].skew for i in cell_idx])
            ku = np.array([cell_moments[i].kurt for i in cell_idx])
            per_level = {
                n: self.models.nsigma.quantile_array(mu, sg, sk, ku, n)
                for n in levels
            }
            for j, i in enumerate(cell_idx):
                stages[i].cell_quantiles = {
                    n: float(per_level[n][j]) for n in levels
                }
        return PathTiming(stages=stages, levels=levels)
