"""The N-sigma wire delay model (Eqs. 4–9).

The wire delay mean is the Elmore delay (Eq. 4); its variability
``X_w = sigma_w / mu_w`` is modeled from the *cells* at its two ends:

* every cell has a variability ratio ``sigma/mu`` that scales by
  Pelgrom's law as ``1/sqrt(n_stack * strength)`` (Eq. 5);
* normalizing by the FO4 inverter (INVx4) gives the cell-specific
  coefficients ``X_FI`` (driver) and ``X_FO`` (load) (Eq. 6);
* the wire variability is a linear combination of the driver and load
  ratios (Eq. 7), here with fitted weights plus — as a reproduction
  extension — an intercept ``X_0`` absorbing the BEOL (wire R/C)
  variation floor that the paper's formulation folds into its fitted
  coefficients;
* quantiles follow as ``T_w(n) = (1 + n * X_w) * T_Elmore`` (Eqs. 8–9).

The module also provides the wire Monte-Carlo test bench (driver cell →
RC tree → load cell) used both for fitting the weights and for the
Fig. 7–10 benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CalibrationError
from repro.cells.library import Cell, CellLibrary
from repro.core.calibration import CalibratedCellLibrary
from repro.interconnect.metrics import elmore_delay
from repro.interconnect.rctree import RCTree
from repro.moments.regression import fit_linear
from repro.moments.stats import Moments
from repro.spice.measure import ramp_time_for_slew
from repro.spice.montecarlo import DelaySamples, MonteCarloEngine, SimulationSetup
from repro.spice.netlist import PiecewiseLinearSource, TransistorNetlist
from repro.units import FF, PS
from repro.variation.pelgrom import stacked_variability_scale

#: The paper's FO4 baseline cell.
FO4_BASELINE_CELL = "INVx4"


def cell_variability_ratio(
    calibrated: CalibratedCellLibrary, cell_name: str, pin: str = "A"
) -> float:
    """Reference-condition delay variability ``sigma/mu`` of a cell.

    This is the "cell-specific" quantity of Eq. (6): evaluated at the
    library reference operating condition so it is a property of the
    cell, not of a particular instantiation.
    """
    arc = calibrated.get(cell_name, pin, output_rising=False)
    return arc.ref.variability


def predicted_coefficient(cell: Cell, baseline: Cell) -> float:
    """Pelgrom-law prediction of ``X`` relative to the baseline (Eq. 5/6).

    ``X = sqrt(n_base * strength_base) / sqrt(n_cell * strength_cell)`` —
    the benchmark for Fig. 9 compares this prediction against the
    measured ratio.
    """
    return stacked_variability_scale(cell.n_stack, cell.strength) / (
        stacked_variability_scale(baseline.n_stack, baseline.strength)
    )


# ----------------------------------------------------------------------
# Wire Monte-Carlo test bench
# ----------------------------------------------------------------------
def build_wire_setup(
    tech,
    library: CellLibrary,
    driver_name: str,
    load_name: str,
    tree: RCTree,
    sink: Optional[str] = None,
    input_slew: float = 20 * PS,
    output_rising: bool = False,
    load_output_cap: float = 0.4 * FF,
) -> Tuple[SimulationSetup, str]:
    """Build the driver → RC tree → load-cell bench of the wire experiments.

    Returns the :class:`~repro.spice.montecarlo.SimulationSetup`
    (measuring the root→sink wire delay via ``reference_node``) and the
    sink's circuit node name.
    """
    driver = library.get(driver_name)
    load_cell = library.get(load_name)
    sink = sink or tree.leaves()[0]
    vdd = tech.vdd

    net = TransistorNetlist()
    net.fix("vdd", vdd)
    # Inverting driver: a rising input gives a falling wire transition.
    input_rising = not output_rising
    v_from = 0.0 if input_rising else vdd
    ramp = PiecewiseLinearSource.ramp(
        v_from, vdd - v_from, t_start=5 * PS, ramp_time=ramp_time_for_slew(input_slew)
    )
    net.fix("in", ramp)
    drv_nodes = {"A": "in", "Y": "drv_out"}
    for side, value in driver.arc("A").static.items():
        node = f"drv_static_{side}"
        net.fix(node, vdd * value)
        drv_nodes[side] = node
    driver.build(net, "drv", drv_nodes, tech)

    work_tree = tree.copy()
    mapping = work_tree.embed(net, "w", "drv_out")
    sink_node = mapping[sink]

    ld_nodes = {"A": sink_node, "Y": "ld_out"}
    for side, value in load_cell.arc("A").static.items():
        node = f"ld_static_{side}"
        net.fix(node, vdd * value)
        ld_nodes[side] = node
    load_cell.build(net, "ld", ld_nodes, tech)
    net.add_capacitor("c_ld_out", "ld_out", load_output_cap)

    rail = 0.0 if output_rising else vdd
    initial = {"drv_out": rail, "ld_out": vdd - rail}
    for name, node in mapping.items():
        if name != tree.root:
            initial[node] = rail
    setup = SimulationSetup(
        netlist=net,
        input_node="in",
        output_node=sink_node,
        input_rising=input_rising,
        output_rising=output_rising,
        reference_node="drv_out",
        reference_rising=output_rising,
        initial_voltages=initial,
    )
    return setup, sink_node


def annotated_elmore(
    tech,
    library: CellLibrary,
    tree: RCTree,
    sink: str,
    load_name: str,
    load_pin: str = "A",
) -> float:
    """Elmore delay to ``sink`` with the receiver pin cap at its tap.

    The paper's ``T_Elmore`` (Eq. 4) is computed on SPEF parasitics that
    include receiver pin loading; a bare-tree Elmore systematically
    underestimates the measured root→sink delay when the receiver cap is
    a sizeable share of the net capacitance.
    """
    work = tree.copy()
    work.add_cap(sink, library.get(load_name).input_cap(load_pin, tech))
    return float(elmore_delay(work, sink))


def measure_wire_variability(
    engine: MonteCarloEngine,
    library: CellLibrary,
    driver_name: str,
    load_name: str,
    tree: RCTree,
    sink: Optional[str] = None,
    input_slew: float = 20 * PS,
    n_samples: int = 1000,
) -> Tuple[Moments, DelaySamples]:
    """Monte-Carlo moments of one wire's root→sink delay."""
    setup, _ = build_wire_setup(
        engine.tech, library, driver_name, load_name, tree, sink, input_slew
    )
    samples = engine.simulate(setup, n_samples)
    return Moments.from_samples(samples.delay[samples.valid]), samples


# ----------------------------------------------------------------------
# The fitted model
# ----------------------------------------------------------------------
@dataclass
class WireVariabilityModel:
    """Fitted Eq. (7) weights mapping cell ratios to wire variability.

    Attributes
    ----------
    weight_fi / weight_fo:
        Fitted weights on the driver / load cell variability ratios.
    intercept:
        BEOL variability floor ``X_0`` (reproduction extension; set
        ``fit(..., with_intercept=False)`` for the paper-literal form).
    fo4_ratio:
        Reference variability of the FO4 baseline cell (for expressing
        the cell-specific coefficients ``X_FI``/``X_FO`` of Eq. 6).
    r_squared / residual_rms:
        Training diagnostics.
    """

    weight_fi: float
    weight_fo: float
    intercept: float
    fo4_ratio: float
    r_squared: float = 0.0
    residual_rms: float = 0.0

    @classmethod
    def fit(
        cls,
        observations: Sequence[Tuple[float, float, float]],
        fo4_ratio: float,
        with_intercept: bool = True,
    ) -> "WireVariabilityModel":
        """Fit the weights from (ratio_fi, ratio_fo, measured_Xw) triples."""
        if len(observations) < (3 if with_intercept else 2):
            raise CalibrationError(
                f"need more observations than coefficients, got {len(observations)}"
            )
        obs = np.asarray(observations, dtype=float)
        cols = [obs[:, 0], obs[:, 1]]
        if with_intercept:
            cols.append(np.ones(obs.shape[0]))
        x = np.stack(cols, axis=1)
        fit = fit_linear(x, obs[:, 2])
        coef = fit.coef
        return cls(
            weight_fi=float(coef[0]),
            weight_fo=float(coef[1]),
            intercept=float(coef[2]) if with_intercept else 0.0,
            fo4_ratio=fo4_ratio,
            r_squared=fit.r_squared,
            residual_rms=fit.residual_rms,
        )

    # -- Eq. (6): cell-specific coefficients --------------------------
    def x_coefficient(self, cell_ratio: float) -> float:
        """Normalized cell coefficient ``X = (sigma/mu) / (sigma/mu)_FO4``."""
        return cell_ratio / self.fo4_ratio

    # -- Eq. (7)/(8)/(9) -----------------------------------------------
    def wire_variability(self, ratio_fi: float, ratio_fo: float) -> float:
        """``X_w`` for a wire with the given driver/load cell ratios."""
        return max(
            0.0, self.intercept + self.weight_fi * ratio_fi + self.weight_fo * ratio_fo
        )

    def wire_variability_array(
        self, ratio_fi: np.ndarray, ratio_fo: np.ndarray
    ) -> np.ndarray:
        """Vectorized Eq. (7) over arrays of driver/load cell ratios.

        Used by the compiled STA engine to precompute the ``X_w`` of
        every (net, sink) pair of a design in one pass.
        """
        raw = self.intercept + self.weight_fi * np.asarray(ratio_fi) \
            + self.weight_fo * np.asarray(ratio_fo)
        return np.maximum(0.0, raw)

    def wire_sigma(self, elmore: float, ratio_fi: float, ratio_fo: float) -> float:
        """Eq. (8): ``sigma_w = T_Elmore * X_w``."""
        return elmore * self.wire_variability(ratio_fi, ratio_fo)

    def wire_quantile(
        self, elmore: float, ratio_fi: float, ratio_fo: float, level: int
    ) -> float:
        """Eq. (9): ``T_w(n sigma) = (1 + n X_w) * T_Elmore``."""
        return (1.0 + level * self.wire_variability(ratio_fi, ratio_fo)) * elmore

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "weight_fi": self.weight_fi,
            "weight_fo": self.weight_fo,
            "intercept": self.intercept,
            "fo4_ratio": self.fo4_ratio,
            "r_squared": self.r_squared,
            "residual_rms": self.residual_rms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WireVariabilityModel":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


def fit_wire_model(
    engine: MonteCarloEngine,
    library: CellLibrary,
    calibrated: CalibratedCellLibrary,
    trees: Sequence[RCTree],
    driver_names: Sequence[str],
    load_names: Sequence[str],
    input_slew: float = 20 * PS,
    n_samples: int = 800,
    with_intercept: bool = True,
) -> Tuple[WireVariabilityModel, List[Tuple[float, float, float]]]:
    """Calibrate Eq. (7) against wire Monte-Carlo sweeps.

    Sweeps every (tree × driver × load) combination, measures the wire
    variability, and regresses it on the cells' reference variability
    ratios. Returns the fitted model and the raw observations (useful
    for the Fig. 9/10 benchmarks).
    """
    fo4_ratio = cell_variability_ratio(calibrated, FO4_BASELINE_CELL)
    observations: List[Tuple[float, float, float]] = []
    for tree in trees:
        for drv in driver_names:
            for ld in load_names:
                moments, _ = measure_wire_variability(
                    engine, library, drv, ld, tree, input_slew=input_slew,
                    n_samples=n_samples,
                )
                observations.append(
                    (
                        cell_variability_ratio(calibrated, drv),
                        cell_variability_ratio(calibrated, ld),
                        moments.variability,
                    )
                )
    model = WireVariabilityModel.fit(observations, fo4_ratio, with_intercept)
    return model, observations
