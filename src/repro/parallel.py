"""Work-queue executor for independent simulation tasks.

Every expensive loop in the reproduction — the slew×load
characterization grid, golden path Monte-Carlo over many paths, wire
sweeps — is a map over *independent* tasks. :func:`parallel_map` fans
such maps out over a process pool while keeping three guarantees:

* **serial fallback** — ``workers=1`` (the default) runs a plain list
  comprehension in-process: no pool is spawned, no pickling happens,
  and the code path is byte-for-byte the sequential one;
* **determinism** — results are returned in task order regardless of
  completion order, and callers derive per-task RNG seeds with
  :func:`task_seed`, so a parallel run is bit-identical to a serial
  run of the same task list;
* **no oversubscription** — the pool size is capped by the task count.

The worker count comes from the ``REPRO_WORKERS`` environment variable
when not given explicitly (``0`` or ``auto`` → one worker per CPU).
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

#: Environment variable consulted when ``workers`` is not passed explicitly.
WORKERS_ENV = "REPRO_WORKERS"

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    Priority: explicit argument, then ``REPRO_WORKERS``, then 1 (serial).
    ``0``, negative values and the string ``"auto"`` mean "one worker per
    available CPU".
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip().lower()
        if not raw:
            return 1
        if raw == "auto":
            workers = 0
        else:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer or 'auto', got {raw!r}"
                ) from None
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def task_seed(*parts) -> int:
    """Derive a stable 63-bit seed from a master seed plus task identity.

    Uses SHA-256 over the ``repr`` of the parts, so the value is
    reproducible across processes and Python invocations (unlike
    ``hash()``, which is salted). Tasks seeded this way are independent
    of execution order — the cornerstone of parallel/serial bit-equality.
    """
    payload = repr(tuple(parts)).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") >> 1


@dataclass
class ExecutorStats:
    """Bookkeeping of one :func:`parallel_map` dispatch."""

    tasks: int = 0
    workers: int = 1
    wall_s: float = 0.0
    pooled: bool = False


@dataclass
class ParallelExecutor:
    """Reusable work-queue front end with dispatch statistics.

    Thin stateful wrapper over :func:`parallel_map`; the flow driver and
    benchmarks use it to report how work was fanned out.
    """

    workers: Optional[int] = None
    history: List[ExecutorStats] = field(default_factory=list)

    def map(
        self,
        fn: Callable[[T], R],
        tasks: Iterable[T],
        chunksize: int = 1,
    ) -> List[R]:
        """Run ``fn`` over ``tasks``, recording dispatch statistics."""
        tasks = list(tasks)
        workers = resolve_workers(self.workers)
        t0 = time.perf_counter()
        out = parallel_map(fn, tasks, workers=workers, chunksize=chunksize)
        self.history.append(
            ExecutorStats(
                tasks=len(tasks),
                workers=min(workers, max(1, len(tasks))),
                wall_s=time.perf_counter() - t0,
                pooled=workers > 1 and len(tasks) > 1,
            )
        )
        return out


def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``fn`` over ``tasks``, optionally across a process pool.

    Parameters
    ----------
    fn:
        A module-level (picklable) function of one task.
    tasks:
        The task list; results come back in the same order.
    workers:
        Worker count (see :func:`resolve_workers`). With one worker —
        the default — the map runs serially in-process and no pool is
        created.
    chunksize:
        Tasks per pickled work unit; raise above 1 only for very many
        very cheap tasks.
    """
    tasks = list(tasks)
    workers = resolve_workers(workers)
    if workers <= 1 or len(tasks) <= 1:
        return [fn(t) for t in tasks]
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(fn, tasks, chunksize=chunksize))
