"""Fault-tolerant work-queue executor for independent simulation tasks.

Every expensive loop in the reproduction — the slew×load
characterization grid, golden path Monte-Carlo over many paths, wire
sweeps — is a map over *independent* tasks. :func:`parallel_map` fans
such maps out over a process pool while keeping four guarantees:

* **serial fallback** — ``workers=1`` (the default) runs a plain loop
  in-process: no pool is spawned, no pickling happens, and the code
  path is byte-for-byte the sequential one;
* **determinism** — results are returned in task order regardless of
  completion order, and callers derive per-task RNG seeds with
  :func:`task_seed`, so a parallel run is bit-identical to a serial
  run of the same task list. Retries re-run the *same* task with the
  *same* seed, so a retried result is bit-identical to a first-attempt
  result;
* **fault tolerance** — a :class:`RetryPolicy` gives each task a
  bounded retry budget with backoff and an optional per-attempt
  timeout; a worker process that dies (OOM kill, ``os._exit``) breaks
  only its own chunk, which is re-executed — escalating to an isolated
  single-worker pool — instead of raising ``BrokenProcessPool`` away
  the entire run. Results completed before the crash are kept, not
  recomputed;
* **no oversubscription** — the pool size is capped by the task count.

Tasks that still fail after retries either propagate their original
exception (default) or, when the caller passes a ``quarantine`` sink,
are recorded as :class:`QuarantinedTask` diagnostics with ``None`` in
their result slot so the rest of the run survives.

The worker count comes from the ``REPRO_WORKERS`` environment variable
when not given explicitly (``0`` or ``auto`` → one worker per CPU).

Large read-only payloads shared by many tasks (technology, variation
model, cell templates) can be published once per fan-out through a
:class:`SharedPayloadBank`; tasks then carry a ~100-byte
:class:`SharedPayloadHandle` instead of a multi-kilobyte pickle each.
The parent owns every bank and unlinks it when the map finishes — on
success, quarantine and pool-crash paths alike.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import signal
import threading
import time
import traceback as traceback_mod
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.errors import ExecutionError, TaskTimeoutError

#: Environment variable consulted when ``workers`` is not passed explicitly.
WORKERS_ENV = "REPRO_WORKERS"

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the effective worker count.

    Priority: explicit argument, then ``REPRO_WORKERS``, then 1 (serial).
    ``0``, negative values and the string ``"auto"`` mean "one worker per
    available CPU".
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip().lower()
        if not raw:
            return 1
        if raw == "auto":
            workers = 0
        else:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV} must be an integer or 'auto', got {raw!r}"
                ) from None
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


def task_seed(*parts) -> int:
    """Derive a stable 63-bit seed from a master seed plus task identity.

    Uses SHA-256 over the ``repr`` of the parts, so the value is
    reproducible across processes and Python invocations (unlike
    ``hash()``, which is salted). Tasks seeded this way are independent
    of execution order — the cornerstone of parallel/serial bit-equality
    *and* of retry/resume bit-equality: a retried or resumed task
    derives the exact same seed as its first attempt.
    """
    payload = repr(tuple(parts)).encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") >> 1


# ----------------------------------------------------------------------
# Shared-memory payload publication
# ----------------------------------------------------------------------
#: Prefix of every shared-memory segment this module creates; the
#: failure-injection leak checks scan ``/dev/shm`` for it.
SHM_PREFIX = "repro_"

_bank_counter = itertools.count()

#: Worker-local cache of deserialized payloads, keyed by segment name.
#: Sharing the deserialized object across tasks of one worker matches
#: serial semantics, where every task dict references the same objects.
_attached_payloads: Dict[str, Any] = {}
_ATTACH_CACHE_MAX = 8


def _attach_untracked(name: str):
    """Attach to an existing segment without resource-tracker tracking.

    Only the *creating* process may own a segment's tracker
    registration: before 3.13, plain attachment registers it again, and
    an attach-side registration lets any worker's cleanup (or an
    explicit unregister) strip the parent's entry — spamming tracker
    ``KeyError`` noise or unlinking memory still in use. Python 3.13+
    has ``track=False`` for exactly this; earlier versions need the
    registration suppressed around the constructor call.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13
        from multiprocessing import resource_tracker

        orig = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = orig


@dataclass(frozen=True)
class SharedPayloadHandle:
    """Picklable pointer to a payload published in shared memory.

    ``load()`` attaches to the segment, deserializes the payload (cached
    per worker process, so a worker running many tasks of one arc
    unpickles once) and detaches immediately — workers never hold the
    segment open between tasks, so a worker killed mid-run cannot pin
    the memory.

    A *pack-backed* handle (``pack_path`` set) carries no segment at
    all: the payload already lives in a mmap-able ``.rpk``
    (:mod:`repro.pack`), so workers attach by mapping the file — the
    kernel shares one page-cache copy across every process — after
    checking the pack's content identity against ``pack_identity``.
    """

    name: str
    size: int
    pack_path: Optional[str] = None
    pack_identity: str = ""

    def __getstate__(self):
        # Handles ride inside every task pickle; drop default-valued
        # pack fields so segment-backed handles stay pointer-sized.
        state = {"name": self.name, "size": self.size}
        if self.pack_path is not None:
            state["pack_path"] = self.pack_path
            state["pack_identity"] = self.pack_identity
        return state

    def __setstate__(self, state):
        for field_name in ("name", "size", "pack_path", "pack_identity"):
            default = None if field_name == "pack_path" else ""
            object.__setattr__(
                self, field_name,
                state.get(field_name, 0 if field_name == "size" else default))

    def load(self) -> Any:
        cache_key = self.name if self.pack_path is None else f"pack:{self.pack_path}"
        if cache_key in _attached_payloads:
            return _attached_payloads[cache_key]
        if self.pack_path is not None:
            from repro.pack import PackError, PackFile, load_pack_payload

            try:
                pack = PackFile.open(self.pack_path, verify=False)
                identity = pack.identity()
                pack.close()
                if self.pack_identity and identity != self.pack_identity:
                    raise PackError(
                        f"{self.pack_path}: pack identity {identity} does "
                        f"not match the published {self.pack_identity} "
                        f"(file replaced since publication)",
                        code="stale",
                    )
                payload = load_pack_payload(self.pack_path, verify=True)
            except PackError as exc:
                raise ExecutionError(
                    f"shared pack payload unusable: {exc}"
                ) from exc
        else:
            shm = _attach_untracked(self.name)
            try:
                payload = pickle.loads(bytes(shm.buf[: self.size]))
            finally:
                shm.close()
        while len(_attached_payloads) >= _ATTACH_CACHE_MAX:
            _attached_payloads.pop(next(iter(_attached_payloads)))
        _attached_payloads[cache_key] = payload
        return payload


class SharedPayloadBank:
    """One read-only pickled payload published in POSIX shared memory.

    Without sharing, a pooled fan-out pickles the identical multi-
    kilobyte payload (technology, variation model, cell template) into
    every task message. A bank publishes it once; tasks carry only the
    :class:`SharedPayloadHandle`.

    Lifecycle contract: the *creating* process owns the segment and must
    call :meth:`close` (idempotent) when the fan-out finishes —
    completion, quarantine and pool-crash paths alike; callers wrap the
    map in ``try/finally``. Unlinking while workers are still attached
    is safe: POSIX removes the name immediately and frees the memory on
    the last detach.

    **Pack short-circuit**: a payload whose ``pack`` attribute holds an
    open :class:`repro.pack.PackFile` (e.g. a library characterization
    loaded from ``.rpk``) is *not* copied into shared memory at all —
    the handle points workers at the pack file itself, pinned by its
    content identity, and :meth:`close` has nothing to unlink. The
    mmap'd pages are already the shared, zero-copy representation.
    """

    def __init__(self, payload: Any):
        from multiprocessing import shared_memory

        pack = getattr(payload, "pack", None)
        pack_path = getattr(pack, "path", None)
        if pack_path is not None and Path(pack_path).exists():
            self._shm = None
            self._closed = False
            self.handle = SharedPayloadHandle(
                name="",
                size=0,
                pack_path=str(pack_path),
                pack_identity=pack.identity(),
            )
            return
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        shm = None
        for _ in range(8):
            name = f"{SHM_PREFIX}{os.getpid()}_{next(_bank_counter)}_{os.urandom(3).hex()}"
            try:
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, len(data)), name=name
                )
                break
            except FileExistsError:  # pragma: no cover - astronomically rare
                continue
        if shm is None:  # pragma: no cover
            raise ExecutionError("could not allocate a unique shared-memory name")
        shm.buf[: len(data)] = data
        self._shm = shm
        self._closed = False
        self.handle = SharedPayloadHandle(name=name, size=len(data))

    @classmethod
    def publish(cls, payload: Any) -> Optional["SharedPayloadBank"]:
        """Create a bank, or ``None`` when shared memory is unusable.

        Callers fall back to inlining the payload into each task — the
        fan-out still works, it just pickles more.
        """
        try:
            return cls(payload)
        except ExecutionError:  # pragma: no cover
            raise
        except Exception:
            return None

    def close(self) -> None:
        """Release and unlink the segment (idempotent; no-op for packs)."""
        if self._closed:
            return
        self._closed = True
        if self._shm is None:
            return
        try:
            self._shm.close()
        except Exception:  # pragma: no cover - buffer already released
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - raced with tracker
            pass

    def __enter__(self) -> "SharedPayloadBank":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Retry policy and failure records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-task retry budget with backoff and optional timeout.

    Attributes
    ----------
    max_retries:
        Extra attempts after the first failure (0 = fail immediately).
    backoff_s / backoff_factor / backoff_max_s:
        Sleep before retry ``k`` (1-based) is
        ``min(backoff_s * backoff_factor**(k-1), backoff_max_s)`` —
        bounded exponential. Backoff only delays; it never changes
        results (retries reuse the task's own seed).
    task_timeout:
        Optional per-*attempt* wall-clock budget in seconds, enforced
        with ``SIGALRM`` in the executing process (worker processes run
        tasks on their main thread, so this works identically in pooled
        and serial mode). A timed-out attempt raises
        :class:`~repro.errors.TaskTimeoutError` and is retried like any
        other failure. Unenforceable off the main thread (then attempts
        simply run to completion).
    """

    max_retries: int = 0
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    task_timeout: Optional[float] = None

    def backoff(self, retry: int) -> float:
        """Sleep duration before the ``retry``-th re-attempt (1-based)."""
        return min(self.backoff_s * self.backoff_factor ** (retry - 1), self.backoff_max_s)


@dataclass(frozen=True)
class TaskFailure:
    """One failed attempt of one task (structured, JSON-ready)."""

    attempt: int
    error_type: str
    message: str
    traceback: str = ""

    def as_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }


@dataclass
class QuarantinedTask:
    """A task given up on after exhausting its retry budget.

    Carries everything an operator needs to reproduce the failure:
    the task index and label, how many attempts were made, the failure
    history, and the worker-death count.
    """

    index: int
    label: str
    attempts: int
    failures: List[TaskFailure] = field(default_factory=list)
    pool_crashes: int = 0

    @property
    def error_type(self) -> str:
        return self.failures[-1].error_type if self.failures else "WorkerDeath"

    @property
    def message(self) -> str:
        if self.failures:
            return self.failures[-1].message
        return "worker process died while executing the task"

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
            "pool_crashes": self.pool_crashes,
            "failures": [f.as_dict() for f in self.failures],
        }


@dataclass
class _Outcome:
    """Internal per-task completion record (envelope decoded in parent)."""

    index: int
    ok: bool
    result: Any = None
    attempts: int = 1
    failures: List[TaskFailure] = field(default_factory=list)
    error: Optional[BaseException] = None
    wall_s: float = 0.0
    pool_crashes: int = 0


# ----------------------------------------------------------------------
# Worker-side attempt loop (module-level so it pickles)
# ----------------------------------------------------------------------
def _alarm_handler(signum, frame):  # pragma: no cover - fires only on timeout
    raise TaskTimeoutError("task attempt exceeded its time budget")


_timeout_unsupported_warned = False
_timeout_warn_lock = threading.Lock()


def _warn_timeout_unbounded() -> None:
    """One ``RuntimeWarning`` per process: attempts run unbounded."""
    global _timeout_unsupported_warned
    with _timeout_warn_lock:
        if _timeout_unsupported_warned:
            return
        _timeout_unsupported_warned = True
    warnings.warn(
        "task_timeout requested but cannot be enforced here "
        "(SIGALRM unavailable or attempt off the main thread); "
        "attempts run unbounded",
        RuntimeWarning,
        stacklevel=3,
    )


def _call_with_timeout(fn: Callable[[T], R], task: T, timeout: Optional[float]) -> R:
    """Run one attempt, bounded by ``timeout`` seconds when enforceable.

    When a timeout was requested but cannot be enforced — no ``SIGALRM``
    on this platform, or the attempt runs off the main thread (server
    worker threads dispatching queries, thread-pooled design loads) —
    the attempt degrades to running unbounded, with a one-time
    ``RuntimeWarning`` per process so the degradation is visible instead
    of silent. The thread check is a fast path, not the authority:
    ``signal.signal`` itself refuses with ``ValueError`` outside the
    main thread of the main interpreter (embedded interpreters and
    forked servers can disagree with ``threading.main_thread()``), and
    that refusal takes the same loud degradation path instead of
    crashing the attempt.
    """
    if not timeout:
        return fn(task)
    if threading.current_thread() is not threading.main_thread() \
            or not hasattr(signal, "SIGALRM"):
        _warn_timeout_unbounded()
        return fn(task)
    try:
        old = signal.signal(signal.SIGALRM, _alarm_handler)
    except ValueError:
        _warn_timeout_unbounded()
        return fn(task)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return fn(task)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, old)


class _AttemptLoop:
    """Picklable wrapper running ``fn`` with the retry policy.

    Returns an *envelope* dict instead of raising, so one misbehaving
    task can never poison the pool result channel; the parent decodes
    envelopes into outcomes. ``KeyboardInterrupt`` and ``SystemExit``
    are never swallowed.
    """

    def __init__(self, fn: Callable[[T], R], policy: RetryPolicy):
        self.fn = fn
        self.policy = policy

    def __call__(self, task: T) -> dict:
        t0 = time.perf_counter()
        failures: List[dict] = []
        last_exc: Optional[BaseException] = None
        for attempt in range(1, self.policy.max_retries + 2):
            try:
                result = _call_with_timeout(self.fn, task, self.policy.task_timeout)
                return {
                    "ok": True,
                    "result": result,
                    "attempts": attempt,
                    "failures": failures,
                    "wall_s": time.perf_counter() - t0,
                }
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                last_exc = exc
                failures.append(
                    {
                        "attempt": attempt,
                        "error_type": type(exc).__name__,
                        "message": str(exc),
                        "traceback": traceback_mod.format_exc(),
                    }
                )
                if attempt <= self.policy.max_retries:
                    time.sleep(self.policy.backoff(attempt))
        # Ship the exception object when it pickles (so the parent can
        # re-raise the genuine type); fall back to the text record.
        try:
            pickle.dumps(last_exc)
        except Exception:
            last_exc = None
        return {
            "ok": False,
            "error": last_exc,
            "attempts": self.policy.max_retries + 1,
            "failures": failures,
            "wall_s": time.perf_counter() - t0,
        }


def _run_chunk(loop: _AttemptLoop, chunk: List[T]) -> List[dict]:
    """Execute one pickled work unit: a list of tasks through the loop."""
    return [loop(task) for task in chunk]


def _decode(index: int, env: dict) -> _Outcome:
    """Envelope → outcome (parent side)."""
    return _Outcome(
        index=index,
        ok=env["ok"],
        result=env.get("result"),
        attempts=env["attempts"],
        failures=[TaskFailure(**f) for f in env["failures"]],
        error=env.get("error"),
        wall_s=env["wall_s"],
    )


# ----------------------------------------------------------------------
# Execution strategies
# ----------------------------------------------------------------------
def _run_serial(
    loop: _AttemptLoop,
    tasks: Sequence[T],
    indices: Sequence[int],
    emit: Callable[[_Outcome], None],
    on_start: Callable[[List[int]], None],
) -> None:
    for index, task in zip(indices, tasks):
        on_start([index])
        emit(_decode(index, loop(task)))


def _run_pooled(
    loop: _AttemptLoop,
    tasks: Sequence[T],
    workers: int,
    chunksize: int,
    emit: Callable[[_Outcome], None],
    on_pool_crash: Callable[[List[int], int], None],
    on_start: Callable[[List[int]], None],
) -> None:
    """Fan chunks out over a pool, recovering from dead workers.

    A ``BrokenProcessPool`` kills every in-flight and pending future of
    that pool, but *completed* futures keep their results — those are
    never recomputed. Lost chunks escalate: a first loss resubmits to a
    fresh full-width pool split into single-task chunks (only the
    poison task pays the isolation cost, innocents that merely shared
    the dead pool stay parallel); a second loss re-runs alone in a
    one-worker pool; a task whose chunk was lost three times is
    reported as failed with :class:`~repro.errors.ExecutionError`
    rather than crashing the run. Batches are homogeneous in crash
    level, so recovery rounds never throttle healthy work.
    """
    n = len(tasks)
    pending: List[Tuple[List[int], int]] = [
        (list(range(i, min(i + chunksize, n))), 0) for i in range(0, n, chunksize)
    ]
    while pending:
        level = min(crashes for _, crashes in pending)
        batch = [item for item in pending if item[1] == level]
        pending = [item for item in pending if item[1] != level]
        lost: List[Tuple[List[int], int]] = []
        if level >= 2:
            # Full isolation: one fresh single-worker pool per chunk, so
            # a poison task can no longer take queued innocents with it.
            for idxs, crashes in batch:
                on_start(idxs)
                try:
                    with ProcessPoolExecutor(max_workers=1) as pool:
                        envelopes = pool.submit(
                            _run_chunk, loop, [tasks[i] for i in idxs]
                        ).result()
                    for i, env in zip(idxs, envelopes):
                        emit(_decode(i, env))
                except BrokenProcessPool:
                    lost.append((idxs, crashes + 1))
        else:
            try:
                with ProcessPoolExecutor(
                    max_workers=min(workers, len(batch))
                ) as pool:
                    futures = {}
                    try:
                        for idxs, crashes in batch:
                            on_start(idxs)
                            fut = pool.submit(
                                _run_chunk, loop, [tasks[i] for i in idxs]
                            )
                            futures[fut] = (idxs, crashes)
                    except BrokenProcessPool:
                        # Pool died while submitting: everything not yet
                        # submitted is simply still pending at its level.
                        submitted = {id(v) for v in futures.values()}
                        pending.extend(
                            item for item in batch if id(item) not in submitted
                        )
                    not_done = set(futures)
                    while not_done:
                        done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                        for fut in done:
                            idxs, crashes = futures[fut]
                            try:
                                envelopes = fut.result()
                            except BrokenProcessPool:
                                lost.append((idxs, crashes + 1))
                                continue
                            for i, env in zip(idxs, envelopes):
                                emit(_decode(i, env))
            except BrokenProcessPool:  # pragma: no cover - raised at pool exit
                pass
        if lost:
            # One observability event per pool death, not per lost chunk.
            on_pool_crash(
                sorted(i for idxs, _ in lost for i in idxs),
                max(crashes for _, crashes in lost),
            )
        for idxs, crashes in lost:
            if crashes >= 3:
                # Lost to dead workers three times: give up on the task.
                for i in idxs:
                    emit(_Outcome(index=i, ok=False, pool_crashes=crashes))
            elif len(idxs) > 1:
                # Isolate the poison task: split into single-task chunks.
                pending.extend(([i], crashes) for i in idxs)
            else:
                pending.append((idxs, crashes))


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def parallel_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
    policy: Optional[RetryPolicy] = None,
    quarantine: Optional[List[QuarantinedTask]] = None,
    journal=None,
    labels: Optional[Sequence[str]] = None,
    on_result: Optional[Callable[[int, R], None]] = None,
    perf=None,
) -> List[R]:
    """Map ``fn`` over ``tasks``, optionally across a process pool.

    Parameters
    ----------
    fn:
        A module-level (picklable) function of one task.
    tasks:
        The task list; results come back in the same order.
    workers:
        Worker count (see :func:`resolve_workers`). With one worker —
        the default — the map runs serially in-process and no pool is
        created.
    chunksize:
        Tasks per pickled work unit; raise above 1 only for very many
        very cheap tasks.
    policy:
        :class:`RetryPolicy` for per-task retries/timeout (default: no
        retries, no timeout). Retries reuse the task unchanged —
        including any embedded :func:`task_seed` — so results stay
        bit-identical whether or not a retry happened.
    quarantine:
        When given, a task that fails after all retries is appended to
        this list as a :class:`QuarantinedTask` and its result slot is
        ``None``, instead of raising. When ``None`` (the default) the
        first failed task's exception propagates (in task order), with
        :class:`~repro.errors.ExecutionError` standing in for worker
        deaths and unpicklable exceptions.
    journal:
        Optional :class:`~repro.journal.RunJournal` receiving
        ``task_start`` / ``task_finish`` / ``task_retry`` /
        ``task_quarantine`` / ``pool_crash`` events as tasks are
        dispatched and complete (a task re-dispatched after a worker
        death gets a second ``task_start``).
    labels:
        Optional per-task labels used in journal events and
        quarantine records (default: the task index).
    on_result:
        Optional callback ``(index, result)`` invoked in the parent as
        each task *succeeds* — in completion order, which is arbitrary
        under a pool. Checkpointing hooks (e.g. persisting a finished
        arc) live here.
    perf:
        Optional :class:`~repro.perf.PerfCounters` accumulating
        ``task_retries`` / ``task_quarantines`` / ``pool_crashes``.
    """
    tasks = list(tasks)
    workers = resolve_workers(workers)
    policy = policy or RetryPolicy()
    if (
        policy.task_timeout
        and journal is not None
        and not hasattr(signal, "SIGALRM")
    ):  # pragma: no cover - exercised via monkeypatched signal module
        journal.event(
            "timeout_unsupported",
            detail="SIGALRM unavailable; task_timeout attempts run unbounded",
        )
    loop = _AttemptLoop(fn, policy)
    outcomes: List[Optional[_Outcome]] = [None] * len(tasks)

    def label_of(i: int) -> str:
        return labels[i] if labels is not None else str(i)

    def emit(outcome: _Outcome) -> None:
        outcomes[outcome.index] = outcome
        i = outcome.index
        if perf is not None:
            perf.task_retries += outcome.attempts - 1
        if journal is not None:
            for f in outcome.failures[: outcome.attempts - 1 + (0 if outcome.ok else 1)]:
                if f.attempt <= policy.max_retries:
                    journal.event(
                        "task_retry", task=i, label=label_of(i),
                        attempt=f.attempt, error_type=f.error_type,
                        message=f.message,
                    )
            if outcome.ok:
                journal.event(
                    "task_finish", task=i, label=label_of(i),
                    attempts=outcome.attempts, wall_s=round(outcome.wall_s, 6),
                )
        if outcome.ok and on_result is not None:
            on_result(i, outcome.result)

    def on_pool_crash(idxs: List[int], crashes: int) -> None:
        if perf is not None:
            perf.pool_crashes += 1
        if journal is not None:
            journal.event(
                "pool_crash", tasks=idxs,
                labels=[label_of(i) for i in idxs], crash_count=crashes,
            )

    def on_start(idxs: List[int]) -> None:
        if journal is not None:
            for i in idxs:
                journal.event("task_start", task=i, label=label_of(i))

    if workers <= 1 or len(tasks) <= 1:
        _run_serial(loop, tasks, range(len(tasks)), emit, on_start)
    else:
        _run_pooled(loop, tasks, workers, chunksize, emit, on_pool_crash, on_start)

    results: List[R] = [None] * len(tasks)  # type: ignore[list-item]
    for outcome in outcomes:
        assert outcome is not None, "executor lost a task outcome"
        if outcome.ok:
            results[outcome.index] = outcome.result
            continue
        record = QuarantinedTask(
            index=outcome.index,
            label=label_of(outcome.index),
            attempts=outcome.attempts,
            failures=outcome.failures,
            pool_crashes=outcome.pool_crashes,
        )
        if quarantine is None:
            if outcome.error is not None:
                raise outcome.error
            raise ExecutionError(
                f"task {record.label} failed after {record.attempts} attempt(s) "
                f"({record.pool_crashes} worker death(s)): "
                f"{record.error_type}: {record.message}"
            )
        quarantine.append(record)
        if perf is not None:
            perf.task_quarantines += 1
        if journal is not None:
            journal.event("task_quarantine", **record.as_dict())
    return results


@dataclass
class ExecutorStats:
    """Bookkeeping of one :func:`parallel_map` dispatch."""

    tasks: int = 0
    workers: int = 1
    wall_s: float = 0.0
    pooled: bool = False


@dataclass
class ParallelExecutor:
    """Reusable work-queue front end with dispatch statistics.

    Thin stateful wrapper over :func:`parallel_map`; the flow driver and
    benchmarks use it to report how work was fanned out.
    """

    workers: Optional[int] = None
    policy: Optional[RetryPolicy] = None
    history: List[ExecutorStats] = field(default_factory=list)

    def map(
        self,
        fn: Callable[[T], R],
        tasks: Iterable[T],
        chunksize: int = 1,
        **kwargs,
    ) -> List[R]:
        """Run ``fn`` over ``tasks``, recording dispatch statistics."""
        tasks = list(tasks)
        workers = resolve_workers(self.workers)
        t0 = time.perf_counter()
        out = parallel_map(
            fn, tasks, workers=workers, chunksize=chunksize,
            policy=self.policy, **kwargs,
        )
        self.history.append(
            ExecutorStats(
                tasks=len(tasks),
                workers=min(workers, max(1, len(tasks))),
                wall_s=time.perf_counter() - t0,
                pooled=workers > 1 and len(tasks) > 1,
            )
        )
        return out
